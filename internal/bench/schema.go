package bench

import (
	"encoding/json"
	"fmt"
)

// Artifact schema validation. The BENCH_*.json files committed at the repo
// root are the machine-readable results other tooling (CI, dashboards,
// regression diffing) consumes; this file is the contract that keeps them
// from drifting silently. ValidateArtifact checks both shape (required
// fields, right types) and the cross-field invariants each artifact exists
// to witness — a crash campaign with violations or a lifetime report whose
// managed configuration is not at least 2× the unmanaged baseline is not a
// valid artifact, whatever its JSON looks like.

// artifactSchemas maps the artifact file stem (e.g. "writepath" for
// BENCH_writepath.json) to its validator.
var artifactSchemas = map[string]func(doc map[string]any) error{
	"writepath":     validateWritePath,
	"crashcampaign": validateCrashCampaign,
	"transient":     validateTransient,
	"lifetime":      validateLifetime,
	"encode":        validateEncode,
	"kvscale":       validateKVScale,
	"inflash":       validateInflash,
}

// ArtifactKinds lists every artifact stem a repo checkout is expected to
// carry, in a stable order.
func ArtifactKinds() []string {
	return []string{"writepath", "crashcampaign", "transient", "lifetime", "encode", "kvscale", "inflash"}
}

// ValidateArtifact parses data as the named artifact kind (a stem from
// ArtifactKinds) and checks schema plus invariants.
func ValidateArtifact(kind string, data []byte) error {
	fn, ok := artifactSchemas[kind]
	if !ok {
		return fmt.Errorf("unknown artifact kind %q", kind)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", kind, err)
	}
	if err := fn(doc); err != nil {
		return fmt.Errorf("%s: %w", kind, err)
	}
	return nil
}

// num extracts a required numeric field.
func num(doc map[string]any, key string) (float64, error) {
	v, ok := doc[key]
	if !ok {
		return 0, fmt.Errorf("missing field %q", key)
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("field %q is %T, want number", key, v)
	}
	return f, nil
}

// rows extracts the required non-empty "rows" array of objects.
func rows(doc map[string]any) ([]map[string]any, error) {
	v, ok := doc["rows"]
	if !ok {
		return nil, fmt.Errorf("missing field %q", "rows")
	}
	arr, ok := v.([]any)
	if !ok || len(arr) == 0 {
		return nil, fmt.Errorf("field %q must be a non-empty array", "rows")
	}
	out := make([]map[string]any, len(arr))
	for i, e := range arr {
		m, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("rows[%d] is %T, want object", i, e)
		}
		out[i] = m
	}
	return out, nil
}

// requireNums checks that every listed field of every row is a number.
func requireNums(rs []map[string]any, fields ...string) error {
	for i, r := range rs {
		for _, f := range fields {
			if _, err := num(r, f); err != nil {
				return fmt.Errorf("rows[%d]: %w", i, err)
			}
		}
	}
	return nil
}

func validateWritePath(doc map[string]any) error {
	banks, err := num(doc, "banks")
	if err != nil {
		return err
	}
	rs, err := rows(doc)
	if err != nil {
		return err
	}
	if err := requireNums(rs, "workers", "ops", "device_ops_per_sec", "speedup_vs_1_worker"); err != nil {
		return err
	}
	// Invariant: the tentpole claim — at `banks` workers the device-time
	// speedup over 1 worker is at least 2×.
	found := false
	for _, r := range rs {
		w, _ := num(r, "workers")
		if w != banks {
			continue
		}
		sp, _ := num(r, "speedup_vs_1_worker")
		if sp < 2 {
			return fmt.Errorf("speedup at %d workers is %.2f, want >= 2", int(banks), sp)
		}
		found = true
		break
	}
	if !found {
		return fmt.Errorf("no row with workers == banks (%d)", int(banks))
	}
	return validateHostScaling(doc)
}

// validateHostScaling checks the host-throughput section: every bank count
// carries its serial-legacy baseline, the sharded and async modes run
// allocation-free, and the async pipeline at 8 banks clears the 4× bar over
// the pre-sharding write path.
func validateHostScaling(doc map[string]any) error {
	v, ok := doc["host_scaling"]
	if !ok {
		return fmt.Errorf("missing field %q", "host_scaling")
	}
	arr, ok := v.([]any)
	if !ok || len(arr) == 0 {
		return fmt.Errorf("field %q must be a non-empty array", "host_scaling")
	}
	baselines := map[int]bool{}
	asyncAt8 := 0.0
	for i, e := range arr {
		r, ok := e.(map[string]any)
		if !ok {
			return fmt.Errorf("host_scaling[%d] is %T, want object", i, e)
		}
		mode, ok := r["mode"].(string)
		if !ok {
			return fmt.Errorf("host_scaling[%d]: missing mode", i)
		}
		for _, f := range []string{"banks", "workers", "ops", "ns_per_op", "ops_per_sec", "allocs_per_op", "host_speedup"} {
			if _, err := num(r, f); err != nil {
				return fmt.Errorf("host_scaling[%d] (%s): %w", i, mode, err)
			}
		}
		banks, _ := num(r, "banks")
		speedup, _ := num(r, "host_speedup")
		allocs, _ := num(r, "allocs_per_op")
		switch mode {
		case "serial-legacy":
			baselines[int(banks)] = true
			if speedup != 1 {
				return fmt.Errorf("host_scaling[%d]: serial-legacy host_speedup = %v, want 1 (it is the baseline)", i, speedup)
			}
		case "serial", "concurrent", "async":
			// The steady-state commit paths are pooled end to end; any
			// per-op allocation is a regression.
			if allocs > 0.5 {
				return fmt.Errorf("host_scaling[%d] (%s, %d banks): %.2f allocs/op, want ~0", i, mode, int(banks), allocs)
			}
			if mode == "async" && int(banks) == 8 && speedup > asyncAt8 {
				asyncAt8 = speedup
			}
		default:
			return fmt.Errorf("host_scaling[%d]: unknown mode %q", i, mode)
		}
	}
	for _, b := range []int{4, 8, 16} {
		if !baselines[b] {
			return fmt.Errorf("host_scaling: no serial-legacy baseline row for %d banks", b)
		}
	}
	// Invariant: the tentpole claim — the async pipeline at 8 banks is at
	// least 4× the pre-sharding write path.
	if asyncAt8 < 4 {
		return fmt.Errorf("async host_speedup at 8 banks is %.2f, want >= 4", asyncAt8)
	}
	return nil
}

func validateEncode(doc map[string]any) error {
	for _, f := range []string{"seed", "span_bytes", "e2e_ops", "e2e_scalar_ns_per_op", "e2e_kernel_ns_per_op", "e2e_speedup",
		"e2e_mlc_ops", "e2e_mlc_scalar_ns_per_op", "e2e_mlc_kernel_ns_per_op", "e2e_mlc_speedup"} {
		if _, err := num(doc, f); err != nil {
			return err
		}
	}
	// Invariant: the speedup claim is void unless both paths computed
	// identical outputs and identical controller statistics.
	match, ok := doc["stats_match"].(bool)
	if !ok {
		return fmt.Errorf("missing stats_match flag")
	}
	if !match {
		return fmt.Errorf("kernel and scalar paths diverged; artifact is invalid")
	}
	rs, err := rows(doc)
	if err != nil {
		return err
	}
	if err := requireNums(rs, "width_bits", "values", "scalar_ns_per_value", "kernel_ns_per_value", "speedup"); err != nil {
		return err
	}
	// Invariants: the tentpole claims — at least one n-bit micro row shows
	// a ≥3× kernel speedup, at least one n-cell (MLC) micro row shows ≥5×
	// — and neither end-to-end write path regressed, with the MLC path
	// (scalar-only before the cell kernels) at least doubled.
	bestNBit, bestNCell := 0.0, 0.0
	for i, r := range rs {
		fam, ok := r["family"].(string)
		if !ok {
			return fmt.Errorf("rows[%d]: missing family name", i)
		}
		if _, ok := r["encoder"].(string); !ok {
			return fmt.Errorf("rows[%d]: missing encoder name", i)
		}
		sp, _ := num(r, "speedup")
		if fam == "nbit" && sp > bestNBit {
			bestNBit = sp
		}
		if fam == "ncell" && sp > bestNCell {
			bestNCell = sp
		}
	}
	if bestNBit < 3 {
		return fmt.Errorf("best n-bit kernel speedup is %.2f, want >= 3", bestNBit)
	}
	if bestNCell < 5 {
		return fmt.Errorf("best n-cell kernel speedup is %.2f, want >= 5", bestNCell)
	}
	if e2e, _ := num(doc, "e2e_speedup"); e2e < 1 {
		return fmt.Errorf("end-to-end write path regressed: e2e_speedup %.2f < 1", e2e)
	}
	if mlc, _ := num(doc, "e2e_mlc_speedup"); mlc < 2 {
		return fmt.Errorf("end-to-end MLC write path speedup %.2f, want >= 2", mlc)
	}
	return nil
}

func validateCrashCampaign(doc map[string]any) error {
	if _, err := num(doc, "seed"); err != nil {
		return err
	}
	rs, err := rows(doc)
	if err != nil {
		return err
	}
	if err := requireNums(rs, "cycles", "crashes", "faults_fired", "violation_count", "fingerprint"); err != nil {
		return err
	}
	fps := map[string]float64{}
	sawCkpt := false
	for i, r := range rs {
		scenario, ok := r["scenario"].(string)
		if !ok {
			return fmt.Errorf("rows[%d]: missing scenario name", i)
		}
		// Invariants: the campaign proved something (crashes happened,
		// fingerprint pinned) and proved it cleanly (no violations).
		if v, _ := num(r, "violation_count"); v != 0 {
			return fmt.Errorf("rows[%d] (%s): %v recovery-invariant violations", i, r["scenario"], v)
		}
		if c, _ := num(r, "crashes"); c == 0 {
			return fmt.Errorf("rows[%d] (%s): campaign never crashed", i, r["scenario"])
		}
		fp, _ := num(r, "fingerprint")
		if fp == 0 {
			return fmt.Errorf("rows[%d] (%s): zero fingerprint", i, r["scenario"])
		}
		fps[scenario] = fp
		// Invariant: the compact+ckpt scenario must actually exercise the
		// machinery it exists to crash — GC passes and committed checkpoints
		// under power loss, with reboots restoring from a checkpoint.
		if scenario == "kvs/compact+ckpt" {
			sawCkpt = true
			for _, f := range []string{"compactions", "checkpoints", "checkpoint_mounts"} {
				v, err := num(r, f)
				if err != nil {
					return fmt.Errorf("rows[%d] (%s): %w", i, scenario, err)
				}
				if v == 0 {
					return fmt.Errorf("rows[%d] (%s): %s is 0; campaign never stressed it", i, scenario, f)
				}
			}
		}
	}
	if !sawCkpt {
		return fmt.Errorf("missing the kvs/compact+ckpt scenario row")
	}
	// Invariant: the async commit pipeline replays the synchronous campaign
	// byte for byte — same seed, same fault schedule, same fingerprint.
	if syncFP, ok := fps["kvs/mixed"]; ok {
		if asyncFP, ok := fps["kvs/mixed+async"]; ok && asyncFP != syncFP {
			return fmt.Errorf("kvs/mixed+async fingerprint %v != kvs/mixed %v; async pipeline perturbed the campaign", asyncFP, syncFP)
		}
	}
	return nil
}

func validateTransient(doc map[string]any) error {
	if _, err := num(doc, "seed"); err != nil {
		return err
	}
	rs, err := rows(doc)
	if err != nil {
		return err
	}
	if err := requireNums(rs, "cycles", "crashes", "faults_fired", "violation_count",
		"fingerprint", "recovery_rate"); err != nil {
		return err
	}
	fps := map[string]float64{}
	sawExhaust := false
	for i, r := range rs {
		scenario, ok := r["scenario"].(string)
		if !ok {
			return fmt.Errorf("rows[%d]: missing scenario name", i)
		}
		if v, _ := num(r, "violation_count"); v != 0 {
			return fmt.Errorf("rows[%d] (%s): %v recovery-invariant violations", i, scenario, v)
		}
		if c, _ := num(r, "crashes"); c == 0 {
			return fmt.Errorf("rows[%d] (%s): campaign never crashed", i, scenario)
		}
		fp, _ := num(r, "fingerprint")
		if fp == 0 {
			return fmt.Errorf("rows[%d] (%s): zero fingerprint", i, scenario)
		}
		fps[scenario] = fp
		// Every scenario must actually inject transients and save writes.
		for _, f := range []string{"transient_program_armed", "retry_saves"} {
			v, err := num(r, f)
			if err != nil {
				return fmt.Errorf("rows[%d] (%s): %w", i, scenario, err)
			}
			if v == 0 {
				return fmt.Errorf("rows[%d] (%s): %s is 0; campaign never stressed it", i, scenario, f)
			}
		}
		if scenario == "kvs/transient-exhaust" {
			sawExhaust = true
			// Invariant: the under-budgeted scenario exercises retirement.
			v, err := num(r, "retry_retired")
			if err != nil {
				return fmt.Errorf("rows[%d] (%s): %w", i, scenario, err)
			}
			if v == 0 {
				return fmt.Errorf("rows[%d] (%s): no incident exhausted the retry budget", i, scenario)
			}
		} else {
			// Invariant: the retry policy recovers at least 90% of injected
			// transient failures without retiring a page.
			if rate, _ := num(r, "recovery_rate"); rate < 0.9 {
				return fmt.Errorf("rows[%d] (%s): recovery rate %.2f, want >= 0.9", i, scenario, rate)
			}
		}
		// Retention rows must age cells and exercise the hardened read path.
		if scenario == "kvs/transient+retention" || scenario == "kvs/transient+retention+async" {
			for _, f := range []string{"retention_aged", "sense_retries"} {
				v, err := num(r, f)
				if err != nil {
					return fmt.Errorf("rows[%d] (%s): %w", i, scenario, err)
				}
				if v == 0 {
					return fmt.Errorf("rows[%d] (%s): %s is 0; campaign never stressed it", i, scenario, f)
				}
			}
		}
	}
	if !sawExhaust {
		return fmt.Errorf("missing the kvs/transient-exhaust scenario row")
	}
	// Invariant: retry backoffs and retention aging are charged per bank in
	// issue order, so the async pipeline replays each sync twin byte for byte.
	for _, pair := range [][2]string{
		{"kvs/transient", "kvs/transient+async"},
		{"kvs/transient+retention", "kvs/transient+retention+async"},
	} {
		syncFP, ok := fps[pair[0]]
		if !ok {
			return fmt.Errorf("missing the %s scenario row", pair[0])
		}
		asyncFP, ok := fps[pair[1]]
		if !ok {
			return fmt.Errorf("missing the %s scenario row", pair[1])
		}
		if syncFP != asyncFP {
			return fmt.Errorf("%s fingerprint %v != %s %v; async pipeline perturbed the campaign",
				pair[1], asyncFP, pair[0], syncFP)
		}
	}
	return nil
}

func validateKVScale(doc map[string]any) error {
	for _, f := range []string{"seed", "page_size", "value_size", "hot_key_frac", "hot_op_frac"} {
		if _, err := num(doc, f); err != nil {
			return err
		}
	}
	rs, err := rows(doc)
	if err != nil {
		return err
	}
	if err := requireNums(rs, "keys", "data_pages", "slot_pages", "ops", "ops_per_sec",
		"compactions", "checkpoints", "live_bytes", "used_bytes", "space_amp",
		"scan_mount_device_ms", "ckpt_mount_device_ms", "mount_speedup",
		"tail_pages_replayed"); err != nil {
		return err
	}
	maxKeys, speedupAtMax := 0.0, 0.0
	for i, r := range rs {
		// Invariants per row: the workload actually forced GC and committed
		// checkpoints, amplification stayed under the 2.0 gate, and the
		// checkpointed mount beat the scan at all.
		if c, _ := num(r, "compactions"); c == 0 {
			return fmt.Errorf("rows[%d]: compactions is 0; workload never forced GC", i)
		}
		if c, _ := num(r, "checkpoints"); c < 1 {
			return fmt.Errorf("rows[%d]: no checkpoint committed", i)
		}
		amp, _ := num(r, "space_amp")
		if amp < 1 || amp > 2.0 {
			return fmt.Errorf("rows[%d]: space_amp %.2f outside [1, 2.0]", i, amp)
		}
		sp, _ := num(r, "mount_speedup")
		if sp <= 1 {
			return fmt.Errorf("rows[%d]: mount_speedup %.2f; checkpointed mount did not beat the scan", i, sp)
		}
		if k, _ := num(r, "keys"); k > maxKeys {
			maxKeys, speedupAtMax = k, sp
		}
	}
	// Invariant: the tentpole claim — at the largest key count the
	// checkpointed mount is at least 10× faster (device time) than the scan.
	if speedupAtMax < 10 {
		return fmt.Errorf("mount_speedup at %d keys is %.2f, want >= 10", int(maxKeys), speedupAtMax)
	}
	return nil
}

func validateInflash(doc map[string]any) error {
	for _, f := range []string{"seed", "page_size", "banks", "keys", "buckets", "value_size",
		"stale_updates", "samples", "sample_width"} {
		if _, err := num(doc, f); err != nil {
			return err
		}
	}
	rs, err := rows(doc)
	if err != nil {
		return err
	}
	if err := requireNums(rs, "selectivity_pct", "matches", "candidates", "false_positives",
		"senses", "pages_sensed", "scan_energy_uj", "host_energy_uj", "energy_x",
		"scan_device_ms", "host_device_ms", "time_x"); err != nil {
		return err
	}
	stale := 0.0
	for i, r := range rs {
		if _, ok := r["predicate"].(string); !ok {
			return fmt.Errorf("rows[%d]: missing predicate", i)
		}
		// Invariant: the pushdown path returned exactly the host-scan results
		// — the speedup claim is void on a path that loses or invents matches.
		eq, ok := r["equal"].(bool)
		if !ok {
			return fmt.Errorf("rows[%d]: missing equal flag", i)
		}
		if !eq {
			return fmt.Errorf("rows[%d] (%v): pushdown and host scans diverged", i, r["predicate"])
		}
		if s, _ := num(r, "senses"); s == 0 {
			return fmt.Errorf("rows[%d] (%v): no senses; the scan was not served in-flash", i, r["predicate"])
		}
		m, _ := num(r, "matches")
		c, _ := num(r, "candidates")
		if c < m {
			return fmt.Errorf("rows[%d] (%v): %v candidates for %v matches; the plan was not a superset", i, r["predicate"], c, m)
		}
		sel, _ := num(r, "selectivity_pct")
		ex, _ := num(r, "energy_x")
		// Invariants: the tentpole claim — at least a 3× device-energy win at
		// selective queries, and never a regression even at 50%.
		if sel <= 10 && ex < 3 {
			return fmt.Errorf("rows[%d]: energy_x %.2f at %.0f%% selectivity, want >= 3", i, ex, sel)
		}
		if ex <= 1 {
			return fmt.Errorf("rows[%d]: energy_x %.2f; pushdown costs more than reading everything", i, ex)
		}
		fp, _ := num(r, "false_positives")
		stale += fp
	}
	// Invariant: the workload re-bucketed keys, so stale index bits must have
	// surfaced (and been filtered) somewhere — else the soundness machinery
	// under test never ran.
	if stale == 0 {
		return fmt.Errorf("no stale-bit false positives across rows; the re-check path went unexercised")
	}
	v, ok := doc["approx"]
	if !ok {
		return fmt.Errorf("missing field %q", "approx")
	}
	arr, ok := v.([]any)
	if !ok || len(arr) == 0 {
		return fmt.Errorf("field %q must be a non-empty array", "approx")
	}
	for i, e := range arr {
		r, ok := e.(map[string]any)
		if !ok {
			return fmt.Errorf("approx[%d] is %T, want object", i, e)
		}
		for _, f := range []string{"tol", "queries", "exact_matches", "candidates", "missed",
			"max_err", "err_budget", "updates", "rejected", "base_update_uj", "flip_update_uj",
			"update_energy_x", "base_query_uj", "flip_query_uj", "query_energy_x",
			"base_erases", "flip_erases"} {
			if _, err := num(r, f); err != nil {
				return fmt.Errorf("approx[%d]: %w", i, err)
			}
		}
		// Invariants: bounded-error search — no intended reading missed, the
		// observed error inside its budget, refreshes erase-free, and both
		// energy comparisons in FlipBit's favour.
		if m, _ := num(r, "missed"); m != 0 {
			return fmt.Errorf("approx[%d]: %v intended readings missed; the widened window lost matches", i, m)
		}
		me, _ := num(r, "max_err")
		eb, _ := num(r, "err_budget")
		if me > eb {
			return fmt.Errorf("approx[%d]: max_err %v exceeds budget %v", i, me, eb)
		}
		if fe, _ := num(r, "flip_erases"); fe != 0 {
			return fmt.Errorf("approx[%d]: %v erases on the erase-free refresh path", i, fe)
		}
		if ux, _ := num(r, "update_energy_x"); ux < 5 {
			return fmt.Errorf("approx[%d]: update_energy_x %.2f, want >= 5", i, ux)
		}
		if qx, _ := num(r, "query_energy_x"); qx <= 1 {
			return fmt.Errorf("approx[%d]: query_energy_x %.2f; in-flash search did not beat read-all", i, qx)
		}
	}
	return nil
}

func validateLifetime(doc map[string]any) error {
	for _, f := range []string{"seed", "endurance_cycles", "page_size", "num_pages", "spares"} {
		if _, err := num(doc, f); err != nil {
			return err
		}
	}
	rs, err := rows(doc)
	if err != nil {
		return err
	}
	if err := requireNums(rs, "writes_to_first_loss", "lifetime_x", "erases", "max_wear"); err != nil {
		return err
	}
	var sawUnmanaged, sawManaged bool
	for i, r := range rs {
		cfg, ok := r["config"].(string)
		if !ok {
			return fmt.Errorf("rows[%d]: missing config name", i)
		}
		lost, ok := r["data_lost"].(bool)
		if !ok {
			return fmt.Errorf("rows[%d] (%s): missing data_lost flag", i, cfg)
		}
		x, _ := num(r, "lifetime_x")
		switch cfg {
		case "unmanaged":
			sawUnmanaged = true
			if x != 1 {
				return fmt.Errorf("unmanaged lifetime_x = %v, want 1 (it is the baseline)", x)
			}
		default:
			sawManaged = true
			// The acceptance invariants: managed configurations at least
			// double writes-to-first-loss and never lose acknowledged data.
			if x < 2 {
				return fmt.Errorf("%s lifetime_x = %v, want >= 2", cfg, x)
			}
			if lost {
				return fmt.Errorf("%s lost acknowledged data; managed end of life must be a clean refusal", cfg)
			}
		}
	}
	if !sawUnmanaged || !sawManaged {
		return fmt.Errorf("need both an unmanaged baseline row and a managed row")
	}
	return validateLifetimeDensity(doc)
}

// validateLifetimeDensity checks the cell-density sweep: one row per cell
// mode, each with a sane capacity multiplier (exactly its bits per cell), a
// derated endurance rating, and a workload that actually survived some
// writes before first loss.
func validateLifetimeDensity(doc map[string]any) error {
	v, ok := doc["density"]
	if !ok {
		return fmt.Errorf("missing field %q", "density")
	}
	arr, ok := v.([]any)
	if !ok || len(arr) == 0 {
		return fmt.Errorf("field %q must be a non-empty array", "density")
	}
	cells := map[string]bool{}
	for i, e := range arr {
		r, ok := e.(map[string]any)
		if !ok {
			return fmt.Errorf("density[%d] is %T, want object", i, e)
		}
		cell, ok := r["cell"].(string)
		if !ok {
			return fmt.Errorf("density[%d]: missing cell name", i)
		}
		if _, ok := r["encoder"].(string); !ok {
			return fmt.Errorf("density[%d] (%s): missing encoder name", i, cell)
		}
		if _, ok := r["data_lost"].(bool); !ok {
			return fmt.Errorf("density[%d] (%s): missing data_lost flag", i, cell)
		}
		for _, f := range []string{"bits_per_cell", "capacity_x", "endurance_cycles",
			"writes_to_first_loss", "mae", "erases", "max_wear"} {
			if _, err := num(r, f); err != nil {
				return fmt.Errorf("density[%d] (%s): %w", i, cell, err)
			}
		}
		bits, _ := num(r, "bits_per_cell")
		capx, _ := num(r, "capacity_x")
		if capx != bits {
			return fmt.Errorf("density[%d] (%s): capacity_x %v != bits_per_cell %v", i, cell, capx, bits)
		}
		if e, _ := num(r, "endurance_cycles"); e < 1 {
			return fmt.Errorf("density[%d] (%s): endurance_cycles %v, want >= 1", i, cell, e)
		}
		if w, _ := num(r, "writes_to_first_loss"); w <= 0 {
			return fmt.Errorf("density[%d] (%s): writes_to_first_loss %v; the workload never survived a write", i, cell, w)
		}
		cells[cell] = true
	}
	for _, c := range []string{"SLC", "MLC", "TLC"} {
		if !cells[c] {
			return fmt.Errorf("density sweep missing a %s row", c)
		}
	}
	return nil
}
