package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/ftl"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// The lifetime experiment answers the endurance-management question head
// on: how many writes does a device survive before it loses data, with and
// without management? Three configurations run the identical seeded
// workload — a hot drifting sensor record plus cold archival pages — on the
// same tiny part until first data loss:
//
//   - unmanaged: writes go straight to the flash page that holds them. The
//     hot page burns through its endurance rating and the first worn erase
//     silently corrupts acknowledged data.
//   - managed: the volatile FTL levels wear across every page, the health
//     gate fences degraded pages, worn pages retire onto a spare pool, and
//     a scrubber sweeps in between. Life ends with a clean refusal
//     (ErrExactDegraded once the pool is dry), never silent corruption.
//   - managed+approx: the same management with the whole device declared
//     approximatable at a small error threshold. Drift within the budget
//     needs no erase at all, so the same endurance rating stretches across
//     several times more writes (§VI-E's lifetime claim, composed with
//     management).
//
// "Data loss" means acknowledged bytes are gone: a write reported success
// but the data fails read-back (byte mismatch for the exact
// configurations, mean absolute error beyond the configured slack for the
// approximate one — approximation within its budget is the contract, not
// loss), or a write failed destructively (the worn erase that corrupts the
// record it was rewriting). A clean refusal — the health gate fencing the
// write *before* any mutation, with every acknowledged byte still intact —
// also ends life, but loses nothing; the DataLost flag records which way
// each configuration died.

// LifetimeRow is one configuration's outcome.
type LifetimeRow struct {
	Config string `json:"config"`

	// WritesToFirstLoss is how many hot-record writes were acknowledged
	// before the first data loss or write refusal.
	WritesToFirstLoss int `json:"writes_to_first_loss"`

	// DataLost is true when life ended with acknowledged bytes destroyed
	// (silent read-back corruption or a destructive write failure), false
	// when the device refused cleanly with all acknowledged data intact.
	DataLost bool `json:"data_lost"`

	// LifetimeX is WritesToFirstLoss relative to the unmanaged baseline.
	LifetimeX float64 `json:"lifetime_x"`

	Erases       uint64 `json:"erases"`
	MaxWear      uint32 `json:"max_wear"`
	Swaps        uint64 `json:"swaps"`
	Retirements  uint64 `json:"retirements"`
	SparesUsed   int    `json:"spares_used"`
	ScrubSampled uint64 `json:"scrub_sampled"`
	ScrubRetired uint64 `json:"scrub_retired"`
}

// DensityRow is one cell mode's outcome in the density sweep: the same
// seeded workload on the same cell array at one, two, or three bits per
// cell, unmanaged but approximatable, with the encoder matched to the
// mode's reachability order. It makes the capacity/endurance/error
// trade of the density axis concrete: each extra bit per cell multiplies
// capacity and divides the endurance rating by ten.
type DensityRow struct {
	Cell        string `json:"cell"`
	BitsPerCell int    `json:"bits_per_cell"`

	// CapacityX is the storage multiplier over SLC for the same cell
	// array — exactly BitsPerCell.
	CapacityX float64 `json:"capacity_x"`

	Encoder   string `json:"encoder"`
	Endurance uint32 `json:"endurance_cycles"`

	WritesToFirstLoss int  `json:"writes_to_first_loss"`
	DataLost          bool `json:"data_lost"`

	// MAE is the mean absolute error per approximated value over the whole
	// run — the accuracy paid for the erase-free writes that stretch the
	// derated endurance.
	MAE float64 `json:"mae"`

	Erases  uint64 `json:"erases"`
	MaxWear uint32 `json:"max_wear"`
}

// LifetimeReport is the machine-readable result written to
// BENCH_lifetime.json.
type LifetimeReport struct {
	Seed      uint64        `json:"seed"`
	Endurance uint32        `json:"endurance_cycles"`
	PageSize  int           `json:"page_size"`
	NumPages  int           `json:"num_pages"`
	Spares    int           `json:"spares"`
	Rows      []LifetimeRow `json:"rows"`
	Density   []DensityRow  `json:"density"`
}

// Lifetime experiment constants. The part is deliberately tiny so every
// configuration actually reaches end of life in milliseconds; the ratios,
// not the absolute counts, are the result.
const (
	lifetimeSeed   = 0x11FE
	lifetimePages  = 24
	lifetimePS     = 64
	lifetimeSpares = 4

	// lifetimeThreshold is the approximate row's per-write MAE budget, and
	// lifetimeSlack the read-back MAE beyond which approximate data counts
	// as lost (leveling copies re-approximate, so acknowledged data may
	// carry a few writes' worth of budget).
	lifetimeThreshold = 2.0
	lifetimeSlack     = 8.0

	lifetimeScrubEvery = 16 // writes between synchronous scrub passes
	lifetimeScrubPages = 2  // pages sampled per pass
	lifetimeColdEvery  = 32 // writes between cold-page verifications
	lifetimeMaxWrites  = 200_000
)

// lifetimeColdPages is how many cold archival pages the workload seeds.
const lifetimeColdPages = 4

func lifetimeSpec(cfg Config) flash.Spec {
	s := flash.DefaultSpec()
	s.PageSize = lifetimePS
	s.NumPages = lifetimePages
	s.Banks = 1
	s.EnduranceCycles = 40
	if cfg.Quick {
		s.EnduranceCycles = 12
	}
	return s
}

// lifetimeTarget abstracts the write/read path so the same workload drives
// a raw device and a managed FTL.
type lifetimeTarget struct {
	write func(addr int, data []byte) error
	read  func(addr int, dst []byte) error
}

// runLifetimeConfig drives the shared workload against one configuration
// until first loss and returns (writes survived, acknowledged data lost).
func runLifetimeConfig(spec flash.Spec, tgt lifetimeTarget, scrub func(), tol float64) (int, bool, error) {
	rng := xrand.New(lifetimeSeed)
	ps := spec.PageSize

	// Cold archival pages: written once, verified periodically.
	cold := make([][]byte, lifetimeColdPages)
	for i := range cold {
		cold[i] = make([]byte, ps)
		for j := range cold[i] {
			cold[i][j] = rng.Byte()
		}
		if err := tgt.write((1+i)*ps, cold[i]); err != nil {
			return 0, false, fmt.Errorf("seeding cold page %d: %w", i, err)
		}
	}

	// Hot drifting record on logical page 0.
	hot := make([]byte, ps)
	for j := range hot {
		hot[j] = rng.Byte()
	}

	check := func(addr int, want []byte) (bool, error) {
		got := make([]byte, len(want))
		if err := tgt.read(addr, got); err != nil {
			return false, err
		}
		var sum float64
		for i := range got {
			d := float64(got[i]) - float64(want[i])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum/float64(len(want)) <= tol, nil
	}

	// intact re-verifies everything previously acknowledged: the cold
	// pages and the last hot record a write call returned success for.
	lastAcked := make([]byte, ps)
	copy(lastAcked, hot)
	haveAcked := false
	intact := func() bool {
		for c, want := range cold {
			if ok, err := check((1+c)*ps, want); err != nil || !ok {
				return false
			}
		}
		if !haveAcked {
			return true
		}
		ok, err := check(0, lastAcked)
		return err == nil && ok
	}

	for i := 0; i < lifetimeMaxWrites; i++ {
		for j := range hot {
			hot[j] = byte(int(hot[j]) + rng.Intn(5) - 2)
		}
		err := tgt.write(0, hot)
		switch {
		case err == nil:
		case errors.Is(err, flash.ErrWornOut):
			// The worn erase happened in place: the record being
			// rewritten — acknowledged on the previous iteration — is
			// gone. A destructive failure, not a clean refusal.
			return i, true, nil
		default:
			// Refused before mutation (the health gate's contract).
			// Loss only if the refusal is lying about "before".
			return i, !intact(), nil
		}
		ok, rerr := check(0, hot)
		if rerr != nil || !ok {
			return i, true, nil // acked write failed read-back: silent loss
		}
		copy(lastAcked, hot)
		haveAcked = true
		if i%lifetimeColdEvery == 0 {
			for c, want := range cold {
				ok, rerr := check((1+c)*ps, want)
				if rerr != nil || !ok {
					return i, true, nil
				}
			}
		}
		if scrub != nil && i%lifetimeScrubEvery == 0 {
			scrub()
		}
	}
	return lifetimeMaxWrites, false, nil
}

// RunLifetime executes all three configurations and returns the report.
func RunLifetime(cfg Config) (*LifetimeReport, error) {
	spec := lifetimeSpec(cfg)
	rep := &LifetimeReport{
		Seed:      lifetimeSeed,
		Endurance: spec.EnduranceCycles,
		PageSize:  spec.PageSize,
		NumPages:  spec.NumPages,
		Spares:    lifetimeSpares,
	}

	// Unmanaged baseline: raw device, exact in-place writes.
	{
		dev := core.MustNewDevice(spec)
		writes, lost, err := runLifetimeConfig(spec, lifetimeTarget{
			write: dev.Write,
			read:  dev.Read,
		}, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("unmanaged: %w", err)
		}
		st := dev.Flash().Stats()
		rep.Rows = append(rep.Rows, LifetimeRow{
			Config:            "unmanaged",
			WritesToFirstLoss: writes,
			DataLost:          lost,
			LifetimeX:         1,
			Erases:            st.Erases,
			MaxWear:           dev.Flash().MaxWear(),
		})
	}

	// Managed configurations share the FTL + gate + scrubber assembly.
	managed := func(name string, approx bool) error {
		dev := core.MustNewDevice(spec, core.WithHealthGate())
		if approx {
			if err := dev.SetApproxRegion(0, spec.PageSize*spec.NumPages); err != nil {
				return err
			}
			dev.SetThreshold(lifetimeThreshold)
		}
		f := ftl.New(dev, ftl.WithSpares(lifetimeSpares), ftl.WithSwapDelta(8))
		maxStuck := 0
		if approx {
			maxStuck = 4
		}
		scr := core.NewScrubber(dev, core.ScrubConfig{
			MaxStuck: maxStuck,
			Refresh:  f.RefreshPage,
			Retire:   f.RetirePage,
		})
		tol := 0.0
		if approx {
			tol = lifetimeSlack
		}
		writes, lost, err := runLifetimeConfig(spec, lifetimeTarget{
			write: f.Write,
			read:  f.Read,
		}, func() { scr.ScrubBank(0, lifetimeScrubPages) }, tol)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fst := f.Stats()
		sst := scr.Stats()
		rep.Rows = append(rep.Rows, LifetimeRow{
			Config:            name,
			WritesToFirstLoss: writes,
			DataLost:          lost,
			LifetimeX:         float64(writes) / float64(rep.Rows[0].WritesToFirstLoss),
			Erases:            dev.Flash().Stats().Erases,
			MaxWear:           dev.Flash().MaxWear(),
			Swaps:             fst.Swaps,
			Retirements:       fst.Retirements + sst.Retired,
			SparesUsed:        lifetimeSpares - f.SparesRemaining(),
			ScrubSampled:      sst.Sampled,
			ScrubRetired:      sst.Retired,
		})
		return nil
	}
	if err := managed("managed", false); err != nil {
		return nil, err
	}
	if err := managed("managed+approx", true); err != nil {
		return nil, err
	}

	// Density sweep: the identical workload on the same cell array at each
	// density, unmanaged but whole-array approximatable, with the encoder
	// matched to the mode — the n-bit window on the bitwise modes, the
	// n-cell window where reachability is per-2-bit-cell level order. The
	// derated part trades capacity (×bits per cell) against endurance
	// (÷10 per extra bit) while approximation claws lifetime back.
	for _, d := range []struct {
		mode flash.CellMode
		enc  approx.Encoder
	}{
		{flash.SLC, approx.MustNBit(2)},
		{flash.MLC, approx.MustNCell(2)},
		{flash.TLC, approx.MustNBit(2)},
	} {
		spec := flash.DensitySpec(lifetimeSpec(cfg), d.mode)
		dev := core.MustNewDevice(spec, core.WithEncoder(d.enc))
		if err := dev.SetApproxRegion(0, spec.Size()); err != nil {
			return nil, err
		}
		dev.SetThreshold(lifetimeThreshold)
		writes, lost, err := runLifetimeConfig(spec, lifetimeTarget{
			write: dev.Write,
			read:  dev.Read,
		}, nil, lifetimeSlack)
		if err != nil {
			return nil, fmt.Errorf("density %v: %w", d.mode, err)
		}
		mae := 0.0
		if st := dev.Stats(); st.ValuesTotal > 0 {
			mae = st.MAE()
		}
		rep.Density = append(rep.Density, DensityRow{
			Cell:              d.mode.String(),
			BitsPerCell:       d.mode.Bits(),
			CapacityX:         float64(d.mode.Bits()),
			Encoder:           d.enc.Name(),
			Endurance:         spec.EnduranceCycles,
			WritesToFirstLoss: writes,
			DataLost:          lost,
			MAE:               mae,
			Erases:            dev.Flash().Stats().Erases,
			MaxWear:           dev.Flash().MaxWear(),
		})
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *LifetimeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExpLifetime is the registry wrapper: the report as a rendered table.
func ExpLifetime(cfg Config) (*Table, error) {
	rep, err := RunLifetime(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "lifetime",
		Title: "writes to first data loss: unmanaged vs endurance-managed flash",
		Columns: []string{"config", "writes to first loss", "lifetime", "died how",
			"erases", "max wear", "swaps", "retired", "spares used"},
	}
	for _, row := range rep.Rows {
		died := "clean refusal, data intact"
		if row.DataLost {
			died = "DATA LOST"
		}
		t.AddRow(row.Config,
			fmt.Sprintf("%d", row.WritesToFirstLoss),
			fmt.Sprintf("%.1f×", row.LifetimeX),
			died,
			fmt.Sprintf("%d", row.Erases),
			fmt.Sprintf("%d", row.MaxWear),
			fmt.Sprintf("%d", row.Swaps),
			fmt.Sprintf("%d", row.Retirements),
			fmt.Sprintf("%d", row.SparesUsed))
	}
	for _, d := range rep.Density {
		died := "intact"
		if d.DataLost {
			died = "DATA LOST"
		}
		rel := 1.0
		if base := rep.Density[0].WritesToFirstLoss; base > 0 {
			rel = float64(d.WritesToFirstLoss) / float64(base)
		}
		t.AddRow(fmt.Sprintf("density:%s+%s", d.Cell, d.Encoder),
			fmt.Sprintf("%d", d.WritesToFirstLoss),
			fmt.Sprintf("%.2f×", rel),
			died,
			fmt.Sprintf("%d", d.Erases),
			fmt.Sprintf("%d", d.MaxWear),
			"—", "—", "—")
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("seed %#x, endurance %d cycles, %d×%dB pages, %d-page spare pool; identical seeded workload per config",
			rep.Seed, rep.Endurance, rep.NumPages, rep.PageSize, rep.Spares),
		"loss = acknowledged bytes destroyed (failed read-back, or a worn erase corrupting the record it rewrote); a health-gate refusal ends life with data intact",
		"the unmanaged row loses data when its hot page wears out; managed rows level, retire and scrub until the spare pool is dry, then refuse cleanly")
	for _, d := range rep.Density {
		t.Notes = append(t.Notes,
			fmt.Sprintf("density %s: %d bit(s)/cell (×%.0f capacity), endurance %d cycles, encoder %s, run MAE %.2f",
				d.Cell, d.BitsPerCell, d.CapacityX, d.Endurance, d.Encoder, d.MAE))
	}
	return t, nil
}
