// Package bench regenerates every table and figure of the paper's
// evaluation (§V). Each experiment is a function returning a Table of
// typed, rendered rows; cmd/flipbit prints them and the repository-level
// benchmarks in bench_test.go drive them under `go test -bench`.
//
// Absolute numbers come from the simulated substrates documented in
// DESIGN.md; EXPERIMENTS.md records paper-vs-measured for each experiment.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

// Config controls experiment scale.
type Config struct {
	// Quick trims workloads (fewer frames, fewer test samples) so the
	// whole suite completes in seconds; shapes are preserved.
	Quick bool

	// Cell selects the flash cell density the device-level experiments run
	// at (cmd/flipbit -cell). The zero value, SLC, reproduces the committed
	// artifacts; MLC and TLC re-derate the part via flash.DensitySpec so
	// the same scenarios sweep the density axis.
	Cell flash.CellMode
}

// applyCell re-parameterises a device spec for the configured density.
// SLC is the identity, so default runs match the committed artifacts.
func (c Config) applyCell(s flash.Spec) flash.Spec {
	if c.Cell == flash.SLC {
		return s
	}
	return flash.DensitySpec(s, c.Cell)
}

// Table is one regenerated result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "── %s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("─", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes the table as RFC-4180 CSV (header row first), for
// feeding plots. Notes are omitted.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Experiment is a registry entry.
type Experiment struct {
	ID   string
	What string
	Run  func(Config) (*Table, error)
}

// Registry returns every experiment in paper order plus the ablations.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "flash operation power vs ARM Cortex-M0+", Fig1},
		{"table1", "flash operation latency and energy", TableI},
		{"table2", "derived n=2 approximation truth table", TableII},
		{"fig4", "worked 1-bit approximation example", Fig4},
		{"fig5", "worked 2-bit approximation example", Fig5},
		{"table3", "evaluated ML models", TableIII},
		{"fig10", "video energy reduction and PSNR (2-bit, threshold 2)", Fig10},
		{"fig11", "FlipBit vs frame-rate reduction at matched energy", Fig11},
		{"fig12", "ML energy reduction and accuracy at tuned thresholds", Fig12},
		{"fig13", "object-detection F1 on approximated video", Fig13},
		{"fig14", "video threshold sweep", Fig14},
		{"fig15", "ML threshold sweep", Fig15},
		{"fig16", "N-bit window sweep on video", Fig16},
		{"fig17", "video lifetime increase", Fig17},
		{"fig18", "ML lifetime increase", Fig18},
		{"table4", "hardware overhead at 33 MHz (65 nm)", TableIV},
		{"ablation-optimality", "n-bit error vs exact optimal encoder", AblationOptimality},
		{"ablation-metric", "MAE vs MSE page gating", AblationErrorMetric},
		{"ablation-fallback", "per-page vs per-value fallback", AblationFallback},
		{"ablation-skip", "skip-unchanged-byte programming", AblationSkipProgram},
		{"ablation-mlc", "SLC n-bit vs MLC n-cell encoding", AblationMLC},
		{"ablation-float", "float32 mantissa-window approximation (§VI)", AblationFloat},
		{"ablation-pagesize", "erase-granularity sensitivity on video", AblationPageSize},
		{"exp-related", "related-work erase-reduction techniques (§VII)", ExpRelated},
		{"exp-wear", "wear leveling × FlipBit composition (§II-B)", ExpWear},
		{"exp-harvest", "energy-harvesting checkpoint progress (§VI)", ExpHarvest},
		{"writepath", "bank-sharded commit throughput, serial vs concurrent", ExpWritePath},
		{"encodekernel", "batch encode kernels vs scalar per-value encoding", ExpEncodeKernel},
		{"crashcampaign", "fault-injection campaign: crash/reboot survival and recovery cost", ExpCrashCampaign},
		{"transient", "transient-fault campaign: verify-retry-retire and retention repair", ExpTransient},
		{"lifetime", "writes to first data loss: unmanaged vs endurance-managed", ExpLifetime},
		{"kvscale", "store at scale: GC under load, space amplification, O(tail) mount", ExpKVScale},
		{"inflash", "in-flash predicate pushdown and approximate search vs host scans", ExpInflash},
	}
}

// ByID returns the registered experiment or nil.
func ByID(id string) *Experiment {
	for _, e := range Registry() {
		if e.ID == id {
			return &e
		}
	}
	return nil
}

// --- small shared helpers ---

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

// geomean of positive values; zero/negative entries are clamped to eps so a
// single perfect result does not blow up the aggregate.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x < 1e-9 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
