package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// WritePathRow is one measured configuration of the commit-throughput
// benchmark: `workers` goroutines issuing page commits against a bank-
// sharded device. Host metrics (ns/op, allocs) depend on the machine the
// benchmark runs on; device metrics come from the simulator's datasheet
// timing model, where ops on different banks overlap, and are deterministic.
type WritePathRow struct {
	Workers     int     `json:"workers"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HostSpeedup float64 `json:"host_speedup_vs_1_worker"`

	DeviceMillis    float64 `json:"device_ms"`
	DeviceOpsPerSec float64 `json:"device_ops_per_sec"`
	Speedup         float64 `json:"speedup_vs_1_worker"`
}

// HostScalingRow is one measured configuration of the host-throughput
// section: a drive mode (pipeline generation) at a bank count. host_speedup
// is relative to the serial-legacy row of the same bank count — the
// pre-sharding write path with per-byte op events, which is what this
// codebase shipped before the event bus was sharded. On a single-CPU host
// the speedup therefore measures the pipeline restructuring itself (event
// batching, group commit, batch-kernel amortization), not parallel
// hardware; with more CPUs the concurrent and async modes additionally
// scale across banks.
type HostScalingRow struct {
	Mode            string  `json:"mode"` // serial-legacy | serial | concurrent | async
	Banks           int     `json:"banks"`
	Workers         int     `json:"workers"`
	Depth           int     `json:"depth,omitempty"` // async queue depth
	Ops             int     `json:"ops"`
	NsPerOp         float64 `json:"ns_per_op"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	HostSpeedup     float64 `json:"host_speedup"`
	DeviceMillis    float64 `json:"device_ms"`
	DeviceOpsPerSec float64 `json:"device_ops_per_sec"`
}

// WritePathReport is the machine-readable result written to
// BENCH_writepath.json: serial (1 worker) versus multi-worker commit
// throughput on a bank-sharded device, plus the host-scaling section
// comparing pipeline generations across bank counts.
type WritePathReport struct {
	Banks       int              `json:"banks"`
	PageSize    int              `json:"page_size"`
	NumPages    int              `json:"num_pages"`
	Threshold   float64          `json:"threshold"`
	GoMaxProc   int              `json:"gomaxprocs"`
	NumCPU      int              `json:"num_cpu"`
	Rows        []WritePathRow   `json:"rows"`
	HostScaling []HostScalingRow `json:"host_scaling"`
}

// writePathSpec is the device the commit benchmark runs against: the default
// part geometry with the default 4-bank partition.
func writePathSpec() flash.Spec {
	s := flash.DefaultSpec()
	s.NumPages = 256
	s.Banks = flash.DefaultBanks
	return s
}

// writePathWorkers are the measured concurrency levels. 1 is the serial
// baseline; 8 oversubscribes the 4 banks so two workers contend per bank.
var writePathWorkers = []int{1, 2, 4, 8}

// writePathPlan pre-generates one commit sequence per bank, identical for
// every worker level, so all levels execute the same per-bank op multisets
// and serial-vs-concurrent results stay comparable.
type writePathPlan struct {
	spec    flash.Spec
	perBank [][]int // bank -> page sequence
	payload []byte
}

func newWritePathPlan(spec flash.Spec, banks, totalOps int) writePathPlan {
	rng := xrand.New(0xBE9C)
	var bankPages [][]int
	for b := 0; b < banks; b++ {
		var pages []int
		for p := 0; p < spec.NumPages; p++ {
			if p%banks == b {
				pages = append(pages, p)
			}
		}
		bankPages = append(bankPages, pages)
	}
	perBank := make([][]int, banks)
	for b := range perBank {
		seq := make([]int, totalOps/banks)
		for i := range seq {
			seq[i] = bankPages[b][rng.Intn(len(bankPages[b]))]
		}
		perBank[b] = seq
	}
	payload := make([]byte, spec.PageSize)
	for i := range payload {
		payload[i] = rng.Byte()
	}
	return writePathPlan{spec, perBank, payload}
}

// run executes the plan with `workers` goroutines. Banks are dealt to
// workers round-robin (bank b goes to worker b mod workers); when workers
// exceed the bank count, a bank's sequence is split among the extra workers,
// which contend on that bank's commit lock. Returns host wall time, host
// allocations, and the simulated device time.
//
// The device time models what the datasheet-level hardware would take: each
// bank is an independent execution unit that performs its ops serially, and
// a worker issues its next op only when the previous one finishes. For
// disjoint-bank workers the critical path is the busiest worker; for shared
// banks it is the busiest bank. Per-bank busy time is read from the stats
// shards, so the figure is deterministic and independent of host CPU count.
func (pl writePathPlan) run(d *core.Device, workers int) (elapsed time.Duration, allocs uint64, device time.Duration) {
	return pl.runMode(d, workers, 0)
}

// runMode is run with an optional async pipeline: depth > 0 makes each
// worker feed WriteAsync with a window of `depth` outstanding commits
// (waiting the oldest when the window fills), then Flush inside the timed
// region so every enqueued commit is accounted for.
func (pl writePathPlan) runMode(d *core.Device, workers, depth int) (elapsed time.Duration, allocs uint64, device time.Duration) {
	banks := len(pl.perBank)
	type chunk struct {
		bank  int
		pages []int
	}
	perWorker := make([][]chunk, workers)
	if workers <= banks {
		for b := 0; b < banks; b++ {
			w := b % workers
			perWorker[w] = append(perWorker[w], chunk{b, pl.perBank[b]})
		}
	} else {
		// Split each bank's sequence among the workers assigned to it.
		for w := 0; w < workers; w++ {
			b := w % banks
			share := workers / banks
			idx := w / banks
			seq := pl.perBank[b]
			lo := len(seq) * idx / share
			hi := len(seq) * (idx + 1) / share
			perWorker[w] = append(perWorker[w], chunk{b, seq[lo:hi]})
		}
	}

	busyBefore := make([]time.Duration, banks)
	for b := 0; b < banks; b++ {
		busyBefore[b] = d.Flash().BankStats(b).Busy
	}

	// Pre-spawn the workers parked on a start gate so goroutine stacks and
	// scheduling structures are allocated outside the measured region —
	// otherwise allocs/op grows with the worker count and the steady-state
	// zero-allocation property of the commit path is unobservable.
	ready := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(chunks []chunk) {
			defer wg.Done()
			var window []*core.Commit
			if depth > 0 {
				window = make([]*core.Commit, 0, depth)
			}
			<-ready
			if depth > 0 {
				for _, c := range chunks {
					for _, p := range c.pages {
						if len(window) == depth {
							_ = window[0].Wait()
							window = window[:copy(window, window[1:])]
						}
						window = append(window, d.WriteAsync(d.Flash().PageBase(p), pl.payload))
					}
				}
				for _, cm := range window {
					_ = cm.Wait()
				}
				return
			}
			for _, c := range chunks {
				for _, p := range c.pages {
					_ = d.Write(d.Flash().PageBase(p), pl.payload)
				}
			}
		}(perWorker[w])
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	close(ready)
	wg.Wait()
	if depth > 0 {
		d.Flush()
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)

	bankBusy := make([]time.Duration, banks)
	for b := 0; b < banks; b++ {
		bankBusy[b] = d.Flash().BankStats(b).Busy - busyBefore[b]
	}
	if workers <= banks {
		// Critical path: the worker with the most total bank busy time.
		for w := 0; w < workers; w++ {
			var sum time.Duration
			for _, c := range perWorker[w] {
				sum += bankBusy[c.bank]
			}
			if sum > device {
				device = sum
			}
		}
	} else {
		// Banks saturate: each executes its full sequence serially no
		// matter how many workers feed it.
		for _, b := range bankBusy {
			if b > device {
				device = b
			}
		}
	}
	return elapsed, after.Mallocs - before.Mallocs, device
}

// RunWritePath measures commit throughput at each worker level and returns
// the machine-readable report. Each level gets a fresh device so wear and
// array state never carry between levels.
func RunWritePath(cfg Config) (*WritePathReport, error) {
	spec := cfg.applyCell(writePathSpec())
	totalOps := 40960
	if cfg.Quick {
		totalOps = 8192
	}
	rep := &WritePathReport{
		Banks:     spec.Banks,
		PageSize:  spec.PageSize,
		NumPages:  spec.NumPages,
		Threshold: 4,
		GoMaxProc: runtime.GOMAXPROCS(0),
		NumCPU:    runtime.NumCPU(),
	}
	plan := newWritePathPlan(spec, spec.Banks, totalOps)
	warm := newWritePathPlan(spec, spec.Banks, 256*spec.Banks)
	for _, workers := range writePathWorkers {
		dev, err := core.NewDevice(spec)
		if err != nil {
			return nil, err
		}
		if err := dev.SetApproxRegion(0, spec.Size()); err != nil {
			return nil, err
		}
		dev.SetThreshold(rep.Threshold)
		warm.run(dev, workers) // prime the buffer pool outside the timed region
		elapsed, allocs, device := plan.run(dev, workers)
		ops := (totalOps / spec.Banks) * spec.Banks
		rep.Rows = append(rep.Rows, WritePathRow{
			Workers:         workers,
			Ops:             ops,
			NsPerOp:         float64(elapsed.Nanoseconds()) / float64(ops),
			OpsPerSec:       float64(ops) / elapsed.Seconds(),
			AllocsPerOp:     float64(allocs) / float64(ops),
			DeviceMillis:    float64(device.Nanoseconds()) / 1e6,
			DeviceOpsPerSec: float64(ops) / device.Seconds(),
		})
	}
	hostBase := rep.Rows[0].OpsPerSec
	devBase := rep.Rows[0].DeviceOpsPerSec
	for i := range rep.Rows {
		rep.Rows[i].HostSpeedup = rep.Rows[i].OpsPerSec / hostBase
		rep.Rows[i].Speedup = rep.Rows[i].DeviceOpsPerSec / devBase
	}
	if err := runHostScaling(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// writePathAsyncDepth is the async-commit queue depth of the host-scaling
// rows: deep enough that group commit forms full batches, shallow enough
// that a Flush drains in microseconds.
const writePathAsyncDepth = 8

// runHostScaling measures the host-throughput section: the three pipeline
// generations (per-byte events → sharded events → async group commit) at
// bank counts 4, 8 and 16, each at GOMAXPROCS = NumCPU. The serial-legacy
// row of each bank count is the baseline its host_speedup column divides
// by.
func runHostScaling(cfg Config, rep *WritePathReport) error {
	totalOps := 40960
	if cfg.Quick {
		totalOps = 8192
	}
	modes := []struct {
		mode    string
		fanout  bool // workers = banks (otherwise 1)
		depth   int
		perByte bool
	}{
		{"serial-legacy", false, 0, true},
		{"serial", false, 0, false},
		{"concurrent", true, 0, false},
		{"async", true, writePathAsyncDepth, false},
	}
	for _, banks := range []int{4, 8, 16} {
		spec := cfg.applyCell(writePathSpec())
		spec.Banks = banks
		plan := newWritePathPlan(spec, banks, totalOps)
		warm := newWritePathPlan(spec, banks, 256*banks)
		var base float64
		for _, m := range modes {
			opts := []core.Option{}
			if m.depth > 0 {
				opts = append(opts, core.WithAsyncCommit(m.depth))
			}
			dev, err := core.NewDevice(spec, opts...)
			if err != nil {
				return err
			}
			if err := dev.SetApproxRegion(0, spec.Size()); err != nil {
				return err
			}
			dev.SetThreshold(rep.Threshold)
			dev.Flash().SetPerByteEvents(m.perByte)
			workers := 1
			if m.fanout {
				workers = banks
			}
			warm.runMode(dev, workers, m.depth)
			elapsed, allocs, device := plan.runMode(dev, workers, m.depth)
			if m.depth > 0 {
				if err := dev.Close(); err != nil {
					return err
				}
			}
			ops := (totalOps / banks) * banks
			row := HostScalingRow{
				Mode:            m.mode,
				Banks:           banks,
				Workers:         workers,
				Depth:           m.depth,
				Ops:             ops,
				NsPerOp:         float64(elapsed.Nanoseconds()) / float64(ops),
				OpsPerSec:       float64(ops) / elapsed.Seconds(),
				AllocsPerOp:     float64(allocs) / float64(ops),
				DeviceMillis:    float64(device.Nanoseconds()) / 1e6,
				DeviceOpsPerSec: float64(ops) / device.Seconds(),
			}
			if m.mode == "serial-legacy" {
				base = row.OpsPerSec
			}
			row.HostSpeedup = row.OpsPerSec / base
			rep.HostScaling = append(rep.HostScaling, row)
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r *WritePathReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExpWritePath is the registry wrapper: the report as a rendered table.
func ExpWritePath(cfg Config) (*Table, error) {
	rep, err := RunWritePath(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "writepath",
		Title:   "bank-sharded commit throughput: serial vs concurrent workers",
		Columns: []string{"workers", "ops", "host ns/op", "allocs/op", "device ms", "device ops/sec", "speedup"},
	}
	for _, r := range rep.Rows {
		t.AddRow(fmt.Sprintf("%d", r.Workers), fmt.Sprintf("%d", r.Ops),
			f1(r.NsPerOp), f2(r.AllocsPerOp),
			f1(r.DeviceMillis), f1(r.DeviceOpsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("device: %d banks × %d pages of %dB, threshold %g, GOMAXPROCS %d",
			rep.Banks, rep.NumPages/rep.Banks, rep.PageSize, rep.Threshold, rep.GoMaxProc),
		"speedup is in simulated device time (banks overlap datasheet busy time); host wall-clock scaling additionally depends on CPU count",
		"8 workers saturate: two workers share each bank's serial execution unit")
	for _, r := range rep.HostScaling {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"host_scaling %-13s banks=%-2d workers=%-2d  %8.0f ops/s  %.2f allocs/op  %.2fx vs serial-legacy",
			r.Mode, r.Banks, r.Workers, r.OpsPerSec, r.AllocsPerOp, r.HostSpeedup))
	}
	return t, nil
}
