package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedArtifacts validates every BENCH_*.json checked in at the repo
// root against its schema and invariants. CI runs this so a hand-edited or
// stale artifact cannot land silently.
func TestCommittedArtifacts(t *testing.T) {
	for _, kind := range ArtifactKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			path := filepath.Join("..", "..", fmt.Sprintf("BENCH_%s.json", kind))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("artifact missing: %v", err)
			}
			if err := ValidateArtifact(kind, data); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestValidateArtifactRejects(t *testing.T) {
	cases := []struct {
		name string
		kind string
		doc  string
	}{
		{"unknown kind", "nope", `{}`},
		{"bad json", "lifetime", `{`},
		{"empty rows", "lifetime", `{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,"rows":[]}`},
		{"lifetime missing baseline", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"managed","writes_to_first_loss":80,"data_lost":false,"lifetime_x":2,"erases":1,"max_wear":1}]}`},
		{"lifetime ratio below 2x", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"unmanaged","writes_to_first_loss":40,"data_lost":true,"lifetime_x":1,"erases":1,"max_wear":1},
			          {"config":"managed","writes_to_first_loss":60,"data_lost":false,"lifetime_x":1.5,"erases":1,"max_wear":1}]}`},
		{"lifetime managed lost data", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"unmanaged","writes_to_first_loss":40,"data_lost":true,"lifetime_x":1,"erases":1,"max_wear":1},
			          {"config":"managed","writes_to_first_loss":100,"data_lost":true,"lifetime_x":2.5,"erases":1,"max_wear":1}]}`},
		{"campaign with violations", "crashcampaign",
			`{"seed":1,"rows":[{"scenario":"s","cycles":10,"crashes":3,"faults_fired":2,"violation_count":1,"fingerprint":7}]}`},
		{"campaign never crashed", "crashcampaign",
			`{"seed":1,"rows":[{"scenario":"s","cycles":10,"crashes":0,"faults_fired":0,"violation_count":0,"fingerprint":7}]}`},
		{"writepath below 2x at banks", "writepath",
			`{"banks":4,"rows":[{"workers":1,"ops":10,"device_ops_per_sec":1,"speedup_vs_1_worker":1},
			                    {"workers":4,"ops":10,"device_ops_per_sec":1.5,"speedup_vs_1_worker":1.5}]}`},
		{"writepath missing host_scaling", "writepath",
			`{"banks":4,"rows":[{"workers":1,"ops":10,"device_ops_per_sec":1,"speedup_vs_1_worker":1},
			                    {"workers":4,"ops":10,"device_ops_per_sec":3,"speedup_vs_1_worker":3}]}`},
		{"writepath async below 4x at 8 banks", "writepath",
			`{"banks":4,"rows":[{"workers":1,"ops":10,"device_ops_per_sec":1,"speedup_vs_1_worker":1},
			                    {"workers":4,"ops":10,"device_ops_per_sec":3,"speedup_vs_1_worker":3}],
			  "host_scaling":[
			    {"mode":"serial-legacy","banks":4,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"serial-legacy","banks":8,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"serial-legacy","banks":16,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"async","banks":8,"workers":8,"depth":8,"ops":10,"ns_per_op":1,"ops_per_sec":3,"allocs_per_op":0,"host_speedup":3}]}`},
		{"writepath host_scaling allocs regression", "writepath",
			`{"banks":4,"rows":[{"workers":1,"ops":10,"device_ops_per_sec":1,"speedup_vs_1_worker":1},
			                    {"workers":4,"ops":10,"device_ops_per_sec":3,"speedup_vs_1_worker":3}],
			  "host_scaling":[
			    {"mode":"serial-legacy","banks":4,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"serial-legacy","banks":8,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"serial-legacy","banks":16,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"async","banks":8,"workers":8,"depth":8,"ops":10,"ns_per_op":1,"ops_per_sec":5,"allocs_per_op":3,"host_speedup":5}]}`},
		{"encode below 3x on nbit", "encode",
			`{"seed":1,"span_bytes":4096,"e2e_ops":100,"e2e_scalar_ns_per_op":200,"e2e_kernel_ns_per_op":100,
			  "e2e_speedup":2,"stats_match":true,
			  "e2e_mlc_ops":100,"e2e_mlc_scalar_ns_per_op":400,"e2e_mlc_kernel_ns_per_op":100,"e2e_mlc_speedup":4,
			  "rows":[{"encoder":"nbit2","family":"nbit","width_bits":8,"values":4096,
			           "scalar_ns_per_value":10,"kernel_ns_per_value":5,"speedup":2},
			          {"encoder":"ncell2","family":"ncell","width_bits":8,"values":4096,
			           "scalar_ns_per_value":60,"kernel_ns_per_value":6,"speedup":10}]}`},
		{"encode stats mismatch", "encode",
			`{"seed":1,"span_bytes":4096,"e2e_ops":100,"e2e_scalar_ns_per_op":200,"e2e_kernel_ns_per_op":100,
			  "e2e_speedup":2,"stats_match":false,
			  "e2e_mlc_ops":100,"e2e_mlc_scalar_ns_per_op":400,"e2e_mlc_kernel_ns_per_op":100,"e2e_mlc_speedup":4,
			  "rows":[{"encoder":"nbit2","family":"nbit","width_bits":8,"values":4096,
			           "scalar_ns_per_value":50,"kernel_ns_per_value":5,"speedup":10},
			          {"encoder":"ncell2","family":"ncell","width_bits":8,"values":4096,
			           "scalar_ns_per_value":60,"kernel_ns_per_value":6,"speedup":10}]}`},
		{"encode below 5x on ncell", "encode",
			`{"seed":1,"span_bytes":4096,"e2e_ops":100,"e2e_scalar_ns_per_op":200,"e2e_kernel_ns_per_op":100,
			  "e2e_speedup":2,"stats_match":true,
			  "e2e_mlc_ops":100,"e2e_mlc_scalar_ns_per_op":400,"e2e_mlc_kernel_ns_per_op":100,"e2e_mlc_speedup":4,
			  "rows":[{"encoder":"nbit2","family":"nbit","width_bits":8,"values":4096,
			           "scalar_ns_per_value":50,"kernel_ns_per_value":5,"speedup":10},
			          {"encoder":"ncell2","family":"ncell","width_bits":8,"values":4096,
			           "scalar_ns_per_value":12,"kernel_ns_per_value":6,"speedup":2}]}`},
		{"encode missing ncell rows", "encode",
			`{"seed":1,"span_bytes":4096,"e2e_ops":100,"e2e_scalar_ns_per_op":200,"e2e_kernel_ns_per_op":100,
			  "e2e_speedup":2,"stats_match":true,
			  "e2e_mlc_ops":100,"e2e_mlc_scalar_ns_per_op":400,"e2e_mlc_kernel_ns_per_op":100,"e2e_mlc_speedup":4,
			  "rows":[{"encoder":"nbit2","family":"nbit","width_bits":8,"values":4096,
			           "scalar_ns_per_value":50,"kernel_ns_per_value":5,"speedup":10}]}`},
		{"encode mlc e2e below 2x", "encode",
			`{"seed":1,"span_bytes":4096,"e2e_ops":100,"e2e_scalar_ns_per_op":200,"e2e_kernel_ns_per_op":100,
			  "e2e_speedup":2,"stats_match":true,
			  "e2e_mlc_ops":100,"e2e_mlc_scalar_ns_per_op":150,"e2e_mlc_kernel_ns_per_op":100,"e2e_mlc_speedup":1.5,
			  "rows":[{"encoder":"nbit2","family":"nbit","width_bits":8,"values":4096,
			           "scalar_ns_per_value":50,"kernel_ns_per_value":5,"speedup":10},
			          {"encoder":"ncell2","family":"ncell","width_bits":8,"values":4096,
			           "scalar_ns_per_value":60,"kernel_ns_per_value":6,"speedup":10}]}`},
		{"campaign missing compact+ckpt scenario", "crashcampaign",
			`{"seed":1,"rows":[{"scenario":"kvs/mixed","cycles":10,"crashes":3,"faults_fired":2,"violation_count":0,"fingerprint":7}]}`},
		{"campaign compact+ckpt never compacted", "crashcampaign",
			`{"seed":1,"rows":[{"scenario":"kvs/compact+ckpt","cycles":10,"crashes":3,"faults_fired":2,"violation_count":0,"fingerprint":7,
			                    "compactions":0,"checkpoints":4,"checkpoint_mounts":2}]}`},
		{"kvscale speedup below 10x at max keys", "kvscale",
			`{"seed":1,"page_size":4096,"value_size":64,"hot_key_frac":0.1,"hot_op_frac":0.9,
			  "rows":[{"keys":1000,"data_pages":30,"slot_pages":3,"ops":1600,"ops_per_sec":1,
			           "compactions":5,"checkpoints":2,"live_bytes":80000,"used_bytes":100000,"space_amp":1.2,
			           "scan_mount_device_ms":8,"ckpt_mount_device_ms":1,"mount_speedup":8,"tail_pages_replayed":1}]}`},
		{"kvscale amplification above gate", "kvscale",
			`{"seed":1,"page_size":4096,"value_size":64,"hot_key_frac":0.1,"hot_op_frac":0.9,
			  "rows":[{"keys":1000,"data_pages":30,"slot_pages":3,"ops":1600,"ops_per_sec":1,
			           "compactions":5,"checkpoints":2,"live_bytes":80000,"used_bytes":200000,"space_amp":2.5,
			           "scan_mount_device_ms":15,"ckpt_mount_device_ms":1,"mount_speedup":15,"tail_pages_replayed":1}]}`},
		{"kvscale never compacted", "kvscale",
			`{"seed":1,"page_size":4096,"value_size":64,"hot_key_frac":0.1,"hot_op_frac":0.9,
			  "rows":[{"keys":1000,"data_pages":30,"slot_pages":3,"ops":1600,"ops_per_sec":1,
			           "compactions":0,"checkpoints":2,"live_bytes":80000,"used_bytes":100000,"space_amp":1.2,
			           "scan_mount_device_ms":15,"ckpt_mount_device_ms":1,"mount_speedup":15,"tail_pages_replayed":1}]}`},
		{"inflash pushdown diverged from host", "inflash",
			`{"seed":1,"page_size":256,"banks":4,"keys":2000,"buckets":100,"value_size":24,"stale_updates":100,
			  "samples":1024,"sample_width":10,
			  "rows":[{"predicate":"sel=0","selectivity_pct":1,"matches":20,"candidates":22,"false_positives":2,
			           "senses":1,"pages_sensed":1,"scan_energy_uj":0.01,"host_energy_uj":0.4,"energy_x":40,
			           "scan_device_ms":0.04,"host_device_ms":2.4,"time_x":40,"equal":false}],
			  "approx":[{"tol":4,"queries":32,"exact_matches":100,"candidates":120,"missed":0,"max_err":8,"err_budget":12,
			             "updates":256,"rejected":3,"base_update_uj":100,"flip_update_uj":1,"update_energy_x":100,
			             "base_query_uj":10,"flip_query_uj":2,"query_energy_x":5,"base_erases":250,"flip_erases":0}]}`},
		{"inflash below 3x at selective query", "inflash",
			`{"seed":1,"page_size":256,"banks":4,"keys":2000,"buckets":100,"value_size":24,"stale_updates":100,
			  "samples":1024,"sample_width":10,
			  "rows":[{"predicate":"sel=0","selectivity_pct":1,"matches":20,"candidates":22,"false_positives":2,
			           "senses":1,"pages_sensed":1,"scan_energy_uj":0.2,"host_energy_uj":0.4,"energy_x":2,
			           "scan_device_ms":1.2,"host_device_ms":2.4,"time_x":2,"equal":true}],
			  "approx":[{"tol":4,"queries":32,"exact_matches":100,"candidates":120,"missed":0,"max_err":8,"err_budget":12,
			             "updates":256,"rejected":3,"base_update_uj":100,"flip_update_uj":1,"update_energy_x":100,
			             "base_query_uj":10,"flip_query_uj":2,"query_energy_x":5,"base_erases":250,"flip_erases":0}]}`},
		{"inflash no stale bits exercised", "inflash",
			`{"seed":1,"page_size":256,"banks":4,"keys":2000,"buckets":100,"value_size":24,"stale_updates":100,
			  "samples":1024,"sample_width":10,
			  "rows":[{"predicate":"sel=0","selectivity_pct":1,"matches":20,"candidates":20,"false_positives":0,
			           "senses":1,"pages_sensed":1,"scan_energy_uj":0.01,"host_energy_uj":0.4,"energy_x":40,
			           "scan_device_ms":0.04,"host_device_ms":2.4,"time_x":40,"equal":true}],
			  "approx":[{"tol":4,"queries":32,"exact_matches":100,"candidates":120,"missed":0,"max_err":8,"err_budget":12,
			             "updates":256,"rejected":3,"base_update_uj":100,"flip_update_uj":1,"update_energy_x":100,
			             "base_query_uj":10,"flip_query_uj":2,"query_energy_x":5,"base_erases":250,"flip_erases":0}]}`},
		{"inflash approx missed a reading", "inflash",
			`{"seed":1,"page_size":256,"banks":4,"keys":2000,"buckets":100,"value_size":24,"stale_updates":100,
			  "samples":1024,"sample_width":10,
			  "rows":[{"predicate":"sel=0","selectivity_pct":1,"matches":20,"candidates":22,"false_positives":2,
			           "senses":1,"pages_sensed":1,"scan_energy_uj":0.01,"host_energy_uj":0.4,"energy_x":40,
			           "scan_device_ms":0.04,"host_device_ms":2.4,"time_x":40,"equal":true}],
			  "approx":[{"tol":4,"queries":32,"exact_matches":100,"candidates":120,"missed":1,"max_err":8,"err_budget":12,
			             "updates":256,"rejected":3,"base_update_uj":100,"flip_update_uj":1,"update_energy_x":100,
			             "base_query_uj":10,"flip_query_uj":2,"query_energy_x":5,"base_erases":250,"flip_erases":0}]}`},
		{"inflash refresh path erased", "inflash",
			`{"seed":1,"page_size":256,"banks":4,"keys":2000,"buckets":100,"value_size":24,"stale_updates":100,
			  "samples":1024,"sample_width":10,
			  "rows":[{"predicate":"sel=0","selectivity_pct":1,"matches":20,"candidates":22,"false_positives":2,
			           "senses":1,"pages_sensed":1,"scan_energy_uj":0.01,"host_energy_uj":0.4,"energy_x":40,
			           "scan_device_ms":0.04,"host_device_ms":2.4,"time_x":40,"equal":true}],
			  "approx":[{"tol":4,"queries":32,"exact_matches":100,"candidates":120,"missed":0,"max_err":8,"err_budget":12,
			             "updates":256,"rejected":3,"base_update_uj":100,"flip_update_uj":2,"update_energy_x":50,
			             "base_query_uj":10,"flip_query_uj":2,"query_energy_x":5,"base_erases":250,"flip_erases":4}]}`},
		{"encode e2e regression", "encode",
			`{"seed":1,"span_bytes":4096,"e2e_ops":100,"e2e_scalar_ns_per_op":100,"e2e_kernel_ns_per_op":200,
			  "e2e_speedup":0.5,"stats_match":true,
			  "e2e_mlc_ops":100,"e2e_mlc_scalar_ns_per_op":400,"e2e_mlc_kernel_ns_per_op":100,"e2e_mlc_speedup":4,
			  "rows":[{"encoder":"nbit2","family":"nbit","width_bits":8,"values":4096,
			           "scalar_ns_per_value":50,"kernel_ns_per_value":5,"speedup":10},
			          {"encoder":"ncell2","family":"ncell","width_bits":8,"values":4096,
			           "scalar_ns_per_value":60,"kernel_ns_per_value":6,"speedup":10}]}`},
		{"lifetime missing density sweep", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"unmanaged","writes_to_first_loss":40,"data_lost":true,"lifetime_x":1,"erases":1,"max_wear":1},
			          {"config":"managed","writes_to_first_loss":100,"data_lost":false,"lifetime_x":2.5,"erases":1,"max_wear":1}]}`},
		{"lifetime density missing TLC row", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"unmanaged","writes_to_first_loss":40,"data_lost":true,"lifetime_x":1,"erases":1,"max_wear":1},
			          {"config":"managed","writes_to_first_loss":100,"data_lost":false,"lifetime_x":2.5,"erases":1,"max_wear":1}],
			  "density":[
			    {"cell":"SLC","bits_per_cell":1,"capacity_x":1,"encoder":"nbit2","endurance_cycles":40,
			     "writes_to_first_loss":500,"data_lost":true,"mae":1.1,"erases":40,"max_wear":41},
			    {"cell":"MLC","bits_per_cell":2,"capacity_x":2,"encoder":"ncell2","endurance_cycles":4,
			     "writes_to_first_loss":80,"data_lost":true,"mae":1.3,"erases":5,"max_wear":5}]}`},
		{"lifetime density capacity mismatch", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"unmanaged","writes_to_first_loss":40,"data_lost":true,"lifetime_x":1,"erases":1,"max_wear":1},
			          {"config":"managed","writes_to_first_loss":100,"data_lost":false,"lifetime_x":2.5,"erases":1,"max_wear":1}],
			  "density":[
			    {"cell":"SLC","bits_per_cell":1,"capacity_x":1,"encoder":"nbit2","endurance_cycles":40,
			     "writes_to_first_loss":500,"data_lost":true,"mae":1.1,"erases":40,"max_wear":41},
			    {"cell":"MLC","bits_per_cell":2,"capacity_x":3,"encoder":"ncell2","endurance_cycles":4,
			     "writes_to_first_loss":80,"data_lost":true,"mae":1.3,"erases":5,"max_wear":5},
			    {"cell":"TLC","bits_per_cell":3,"capacity_x":3,"encoder":"nbit2","endurance_cycles":1,
			     "writes_to_first_loss":20,"data_lost":true,"mae":1.5,"erases":2,"max_wear":2}]}`},
		{"lifetime density zero writes", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"unmanaged","writes_to_first_loss":40,"data_lost":true,"lifetime_x":1,"erases":1,"max_wear":1},
			          {"config":"managed","writes_to_first_loss":100,"data_lost":false,"lifetime_x":2.5,"erases":1,"max_wear":1}],
			  "density":[
			    {"cell":"SLC","bits_per_cell":1,"capacity_x":1,"encoder":"nbit2","endurance_cycles":40,
			     "writes_to_first_loss":500,"data_lost":true,"mae":1.1,"erases":40,"max_wear":41},
			    {"cell":"MLC","bits_per_cell":2,"capacity_x":2,"encoder":"ncell2","endurance_cycles":4,
			     "writes_to_first_loss":80,"data_lost":true,"mae":1.3,"erases":5,"max_wear":5},
			    {"cell":"TLC","bits_per_cell":3,"capacity_x":3,"encoder":"nbit2","endurance_cycles":1,
			     "writes_to_first_loss":0,"data_lost":true,"mae":0,"erases":0,"max_wear":0}]}`},
	}
	for _, tc := range cases {
		if err := ValidateArtifact(tc.kind, []byte(tc.doc)); err == nil {
			t.Errorf("%s: validated but should have been rejected", tc.name)
		}
	}
}
