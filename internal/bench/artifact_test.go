package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedArtifacts validates every BENCH_*.json checked in at the repo
// root against its schema and invariants. CI runs this so a hand-edited or
// stale artifact cannot land silently.
func TestCommittedArtifacts(t *testing.T) {
	for _, kind := range ArtifactKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			path := filepath.Join("..", "..", fmt.Sprintf("BENCH_%s.json", kind))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("artifact missing: %v", err)
			}
			if err := ValidateArtifact(kind, data); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestValidateArtifactRejects(t *testing.T) {
	cases := []struct {
		name string
		kind string
		doc  string
	}{
		{"unknown kind", "nope", `{}`},
		{"bad json", "lifetime", `{`},
		{"empty rows", "lifetime", `{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,"rows":[]}`},
		{"lifetime missing baseline", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"managed","writes_to_first_loss":80,"data_lost":false,"lifetime_x":2,"erases":1,"max_wear":1}]}`},
		{"lifetime ratio below 2x", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"unmanaged","writes_to_first_loss":40,"data_lost":true,"lifetime_x":1,"erases":1,"max_wear":1},
			          {"config":"managed","writes_to_first_loss":60,"data_lost":false,"lifetime_x":1.5,"erases":1,"max_wear":1}]}`},
		{"lifetime managed lost data", "lifetime",
			`{"seed":1,"endurance_cycles":40,"page_size":64,"num_pages":24,"spares":4,
			  "rows":[{"config":"unmanaged","writes_to_first_loss":40,"data_lost":true,"lifetime_x":1,"erases":1,"max_wear":1},
			          {"config":"managed","writes_to_first_loss":100,"data_lost":true,"lifetime_x":2.5,"erases":1,"max_wear":1}]}`},
		{"campaign with violations", "crashcampaign",
			`{"seed":1,"rows":[{"scenario":"s","cycles":10,"crashes":3,"faults_fired":2,"violation_count":1,"fingerprint":7}]}`},
		{"campaign never crashed", "crashcampaign",
			`{"seed":1,"rows":[{"scenario":"s","cycles":10,"crashes":0,"faults_fired":0,"violation_count":0,"fingerprint":7}]}`},
		{"writepath below 2x at banks", "writepath",
			`{"banks":4,"rows":[{"workers":1,"ops":10,"device_ops_per_sec":1,"speedup_vs_1_worker":1},
			                    {"workers":4,"ops":10,"device_ops_per_sec":1.5,"speedup_vs_1_worker":1.5}]}`},
		{"writepath missing host_scaling", "writepath",
			`{"banks":4,"rows":[{"workers":1,"ops":10,"device_ops_per_sec":1,"speedup_vs_1_worker":1},
			                    {"workers":4,"ops":10,"device_ops_per_sec":3,"speedup_vs_1_worker":3}]}`},
		{"writepath async below 4x at 8 banks", "writepath",
			`{"banks":4,"rows":[{"workers":1,"ops":10,"device_ops_per_sec":1,"speedup_vs_1_worker":1},
			                    {"workers":4,"ops":10,"device_ops_per_sec":3,"speedup_vs_1_worker":3}],
			  "host_scaling":[
			    {"mode":"serial-legacy","banks":4,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"serial-legacy","banks":8,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"serial-legacy","banks":16,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"async","banks":8,"workers":8,"depth":8,"ops":10,"ns_per_op":1,"ops_per_sec":3,"allocs_per_op":0,"host_speedup":3}]}`},
		{"writepath host_scaling allocs regression", "writepath",
			`{"banks":4,"rows":[{"workers":1,"ops":10,"device_ops_per_sec":1,"speedup_vs_1_worker":1},
			                    {"workers":4,"ops":10,"device_ops_per_sec":3,"speedup_vs_1_worker":3}],
			  "host_scaling":[
			    {"mode":"serial-legacy","banks":4,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"serial-legacy","banks":8,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"serial-legacy","banks":16,"workers":1,"ops":10,"ns_per_op":1,"ops_per_sec":1,"allocs_per_op":0,"host_speedup":1},
			    {"mode":"async","banks":8,"workers":8,"depth":8,"ops":10,"ns_per_op":1,"ops_per_sec":5,"allocs_per_op":3,"host_speedup":5}]}`},
		{"encode below 3x on nbit", "encode",
			`{"seed":1,"span_bytes":4096,"e2e_ops":100,"e2e_scalar_ns_per_op":200,"e2e_kernel_ns_per_op":100,
			  "e2e_speedup":2,"stats_match":true,
			  "rows":[{"encoder":"nbit2","family":"nbit","width_bits":8,"values":4096,
			           "scalar_ns_per_value":10,"kernel_ns_per_value":5,"speedup":2}]}`},
		{"encode stats mismatch", "encode",
			`{"seed":1,"span_bytes":4096,"e2e_ops":100,"e2e_scalar_ns_per_op":200,"e2e_kernel_ns_per_op":100,
			  "e2e_speedup":2,"stats_match":false,
			  "rows":[{"encoder":"nbit2","family":"nbit","width_bits":8,"values":4096,
			           "scalar_ns_per_value":50,"kernel_ns_per_value":5,"speedup":10}]}`},
		{"encode e2e regression", "encode",
			`{"seed":1,"span_bytes":4096,"e2e_ops":100,"e2e_scalar_ns_per_op":100,"e2e_kernel_ns_per_op":200,
			  "e2e_speedup":0.5,"stats_match":true,
			  "rows":[{"encoder":"nbit2","family":"nbit","width_bits":8,"values":4096,
			           "scalar_ns_per_value":50,"kernel_ns_per_value":5,"speedup":10}]}`},
	}
	for _, tc := range cases {
		if err := ValidateArtifact(tc.kind, []byte(tc.doc)); err == nil {
			t.Errorf("%s: validated but should have been rejected", tc.name)
		}
	}
}
