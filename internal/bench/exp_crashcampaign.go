package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/flipbit-sim/flipbit/internal/faultcampaign"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// CrashCampaignRow is one fault-injection scenario's outcome: a seeded
// campaign of crash/reboot cycles against the key-value store, with the
// recovery invariants checked after every crash. Everything here is
// deterministic — same seed, same numbers, same fingerprint.
type CrashCampaignRow struct {
	Scenario string `json:"scenario"`
	*faultcampaign.Result
}

// CrashCampaignReport is the machine-readable result written to
// BENCH_crashcampaign.json.
type CrashCampaignReport struct {
	Seed   uint64             `json:"seed"`
	Cycles int                `json:"cycles"`
	Rows   []CrashCampaignRow `json:"rows"`
}

// crashCampaignSeed keeps the published artifact reproducible.
const crashCampaignSeed = 0xF1A57

// crashCampaignScenarios are the published configurations: a pure
// brown-out storm against the raw store, a mixed fault diet (power loss +
// stuck bits + read disturb), the same mixed diet through the journaled FTL
// with commit read-back verification on, and a production-shaped store with
// proactive compaction and index checkpointing armed — so power loss lands
// mid-GC and mid-checkpoint, and reboots exercise the O(tail) mount path.
func crashCampaignScenarios(seed uint64, cycles int) []struct {
	name string
	cfg  faultcampaign.Config
} {
	brownout := flash.FaultMix{PowerLoss: 1, MinGap: 0, MaxGap: 60}
	// The compact+ckpt scenario needs room for two 4-page checkpoint slots
	// next to the data log; 32 pages leaves 24 for data, matching the other
	// scenarios' default geometry.
	ckptSpec := flash.DefaultSpec()
	ckptSpec.PageSize = 128
	ckptSpec.NumPages = 32
	ckptSpec.Banks = 1
	return []struct {
		name string
		cfg  faultcampaign.Config
	}{
		{"kvs/power-loss", faultcampaign.Config{Seed: seed, Cycles: cycles, Mix: brownout}},
		{"kvs/mixed", faultcampaign.Config{Seed: seed, Cycles: cycles}},
		{"kvs/mixed+async", faultcampaign.Config{Seed: seed, Cycles: cycles, AsyncCommit: 8}},
		{"kvs-on-ftl/mixed", faultcampaign.Config{Seed: seed, Cycles: cycles, UseFTL: true, Verify: true}},
		{"kvs/compact+ckpt", faultcampaign.Config{
			Seed: seed, Cycles: cycles, Spec: ckptSpec,
			Compact: true, CheckpointEvery: 12, CheckpointPages: 4,
		}},
	}
}

// RunCrashCampaign executes every scenario and returns the report.
func RunCrashCampaign(cfg Config) (*CrashCampaignReport, error) {
	cycles := 1000
	if cfg.Quick {
		cycles = 200
	}
	rep := &CrashCampaignReport{Seed: crashCampaignSeed, Cycles: cycles}
	for _, sc := range crashCampaignScenarios(crashCampaignSeed, cycles) {
		res, err := faultcampaign.Run(sc.cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		rep.Rows = append(rep.Rows, CrashCampaignRow{Scenario: sc.name, Result: res})
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *CrashCampaignReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExpCrashCampaign is the registry wrapper: the report as a rendered table.
func ExpCrashCampaign(cfg Config) (*Table, error) {
	rep, err := RunCrashCampaign(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "crashcampaign",
		Title:   "fault-injection campaign: crashes survived and recovery cost",
		Columns: []string{"scenario", "cycles", "crashes", "in-recovery", "fired", "violations", "mean recovery", "recovery energy", "wasted pages", "corrected bits", "fingerprint"},
	}
	for _, row := range rep.Rows {
		t.AddRow(row.Scenario,
			fmt.Sprintf("%d", row.Cycles),
			fmt.Sprintf("%d", row.Crashes),
			fmt.Sprintf("%d", row.CrashesDuringRecovery),
			fmt.Sprintf("%d", row.FaultsFired),
			fmt.Sprintf("%d", row.ViolationCount),
			row.MeanRecoveryBusy.Round(time.Microsecond).String(),
			row.RecoveryEnergy.String(),
			fmt.Sprintf("%d", row.WastedPages),
			fmt.Sprintf("%d", row.CorrectedBits),
			fmt.Sprintf("%016x", row.Fingerprint))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("seed %#x; every scenario replays byte-identically from its seed (the fingerprint pins schedule + stats)", rep.Seed),
		"violations must be 0: every acknowledged key survives every crash exactly, or settles to old/new across the in-flight operation",
		"recovery cost is flash busy time and energy spent remounting (ftl journal replay + kvs index scan) after each crash")
	return t, nil
}
