package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/flipbit-sim/flipbit/internal/faultcampaign"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// TransientRow is one transient-fault scenario's outcome: a seeded campaign
// where program/erase verify failures are absorbed by the core retry
// budget, retention drift ages cells between reboots, and the hardened
// read path re-senses flicker. Deterministic like every campaign row.
type TransientRow struct {
	Scenario string `json:"scenario"`
	// RecoveryRate is the fraction of transient incidents the retry policy
	// absorbed without retiring a page: saves / (saves + retired).
	RecoveryRate float64 `json:"recovery_rate"`
	*faultcampaign.Result
}

// TransientReport is the machine-readable result written to
// BENCH_transient.json.
type TransientReport struct {
	Seed   uint64         `json:"seed"`
	Cycles int            `json:"cycles"`
	Rows   []TransientRow `json:"rows"`
}

// transientSeed keeps the published artifact reproducible.
const transientSeed = 0xF1A58

// transientScenarios are the published configurations. The first four arm
// a retry budget that covers the worst incident (Retry >= Mix.MaxRetries),
// so every verify failure recovers without retirement — that is the >= 90%
// recovery invariant the artifact witnesses. The exhaust scenario inverts
// the budget (Retry 1 against incidents up to 4 failures) so retirement
// machinery is exercised too; it stays program-only because a torn erase
// that outlasts the budget legitimately destroys the page image, which is
// the FTL's remap territory, not the raw store's.
func transientScenarios(seed uint64, cycles int) []struct {
	name string
	cfg  faultcampaign.Config
} {
	transient := flash.FaultMix{
		PowerLoss: 4, TransientProgram: 3, TransientErase: 1,
		MinGap: 0, MaxGap: 250, MaxRetries: 3,
	}
	retention := transient
	retention.Retention = 2
	exhaust := flash.FaultMix{
		PowerLoss: 2, TransientProgram: 4,
		MinGap: 0, MaxGap: 150, MaxRetries: 4,
	}
	return []struct {
		name string
		cfg  faultcampaign.Config
	}{
		{"kvs/transient", faultcampaign.Config{
			Seed: seed, Cycles: cycles, Retry: 3, Mix: transient,
		}},
		{"kvs/transient+async", faultcampaign.Config{
			Seed: seed, Cycles: cycles, Retry: 3, Mix: transient, AsyncCommit: 8,
		}},
		{"kvs/transient+retention", faultcampaign.Config{
			Seed: seed, Cycles: cycles, Retry: 3, Mix: retention,
			RetentionEvery: 2 * time.Millisecond, Scrub: true,
		}},
		{"kvs/transient+retention+async", faultcampaign.Config{
			Seed: seed, Cycles: cycles, Retry: 3, Mix: retention,
			RetentionEvery: 2 * time.Millisecond, Scrub: true, AsyncCommit: 8,
		}},
		{"kvs/transient-exhaust", faultcampaign.Config{
			Seed: seed, Cycles: cycles, Retry: 1, Mix: exhaust,
		}},
	}
}

// RunTransient executes every scenario and returns the report.
func RunTransient(cfg Config) (*TransientReport, error) {
	cycles := 1000
	if cfg.Quick {
		cycles = 200
	}
	rep := &TransientReport{Seed: transientSeed, Cycles: cycles}
	for _, sc := range transientScenarios(transientSeed, cycles) {
		res, err := faultcampaign.Run(sc.cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		rate := 1.0
		if n := res.RetrySaves + res.RetryRetired; n > 0 {
			rate = float64(res.RetrySaves) / float64(n)
		}
		rep.Rows = append(rep.Rows, TransientRow{Scenario: sc.name, RecoveryRate: rate, Result: res})
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *TransientReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExpTransient is the registry wrapper: the report as a rendered table.
func ExpTransient(cfg Config) (*Table, error) {
	rep, err := RunTransient(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "transient",
		Title:   "transient faults: writes saved by retry, pages retired, retention repair",
		Columns: []string{"scenario", "cycles", "crashes", "violations", "retry saves", "retired", "recovery", "aged", "re-senses", "sense ok", "fingerprint"},
	}
	for _, row := range rep.Rows {
		t.AddRow(row.Scenario,
			fmt.Sprintf("%d", row.Cycles),
			fmt.Sprintf("%d", row.Crashes),
			fmt.Sprintf("%d", row.ViolationCount),
			fmt.Sprintf("%d", row.RetrySaves),
			fmt.Sprintf("%d", row.RetryRetired),
			pct(row.RecoveryRate),
			fmt.Sprintf("%d", row.RetentionAged),
			fmt.Sprintf("%d", row.SenseRetries),
			fmt.Sprintf("%d", row.SenseRecovered),
			fmt.Sprintf("%016x", row.Fingerprint))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("seed %#x; every scenario replays byte-identically, and the async rows must fingerprint-match their sync twins", rep.Seed),
		"with Retry >= MaxRetries the retry policy must absorb every verify failure (recovery 100%, nothing retired)",
		"the exhaust scenario under-budgets retries on purpose: incidents outlasting the budget retire the page via the health gate",
		"retention rows age marginal cells at every reboot; re-senses (plus margin-aware senses) keep flickering records readable")
	return t, nil
}
