package bench

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/video"
)

// videoSuite returns the benchmark clips, trimmed in quick mode.
func videoSuite(cfg Config) []*video.Video {
	suite := video.Suite()
	if !cfg.Quick {
		return suite
	}
	out := make([]*video.Video, 0, len(suite)/2)
	for i, v := range suite {
		if i%2 == 0 { // one of each motion family pair
			c := *v
			c.Frames = 24
			out = append(out, &c)
		}
	}
	return out
}

// fig10Threshold is the operating point of Figs. 10, 13 and 17: the 2-bit
// algorithm at MAE threshold 2 (the paper's headline configuration).
const fig10Threshold = 2.0

// captureBoth runs the exact baseline and FlipBit over one video.
func captureBoth(v *video.Video, encoderN int, threshold float64) (base, fb video.CaptureResult, err error) {
	base, err = video.Capture(v, video.CaptureConfig{EncoderN: 0})
	if err != nil {
		return
	}
	fb, err = video.Capture(v, video.CaptureConfig{EncoderN: encoderN, Threshold: threshold})
	return
}

// capturePair is one video's baseline + FlipBit results.
type capturePair struct {
	base, fb video.CaptureResult
}

// captureSuiteBoth drives captureBoth across the whole suite in parallel
// (each capture owns its device, so clips are independent) and returns
// results in suite order.
func captureSuiteBoth(suite []*video.Video, encoderN int, threshold float64) ([]capturePair, error) {
	return mapConcurrent(suite, func(v *video.Video) (capturePair, error) {
		base, fb, err := captureBoth(v, encoderN, threshold)
		return capturePair{base, fb}, err
	})
}

// captureSuite runs one capture configuration over every clip in parallel.
func captureSuite(suite []*video.Video, cc video.CaptureConfig) ([]video.CaptureResult, error) {
	return mapConcurrent(suite, func(v *video.Video) (video.CaptureResult, error) {
		return video.Capture(v, cc)
	})
}

// Fig10 reports per-video flash-energy reduction and PSNR for the 2-bit
// algorithm at threshold 2.
func Fig10(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "video energy reduction and PSNR, 2-bit approximation [Fig. 10]",
		Columns: []string{"id", "video", "energy reduction", "PSNR (dB)", "flash energy", "baseline"},
	}
	suite := videoSuite(cfg)
	pairs, err := captureSuiteBoth(suite, 2, fig10Threshold)
	if err != nil {
		return nil, err
	}
	var reds, psnrs []float64
	for i, v := range suite {
		base, fb := pairs[i].base, pairs[i].fb
		red := video.EnergyReduction(base, fb)
		reds = append(reds, red)
		psnrs = append(psnrs, fb.MeanPSNR)
		t.AddRow(fmt.Sprintf("%d", v.ID), v.Name, pct(red), f1(fb.MeanPSNR),
			fb.Flash.Energy.String(), base.Flash.Energy.String())
	}
	t.AddRow("", "MEAN", pct(mean(reds)), f1(mean(psnrs)), "", "")
	t.Notes = append(t.Notes,
		"paper: 68% mean energy reduction at 42 dB mean PSNR; ≥40 dB is visually lossless [16,41]")
	return t, nil
}

// Fig11 compares FlipBit against statically reducing the frame rate to the
// stride whose energy is closest to FlipBit's measured energy.
func Fig11(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "PSNR: 2-bit FlipBit vs frame-rate reduction at matched energy [Fig. 11]",
		Columns: []string{"id", "video", "FlipBit PSNR", "reduced-rate PSNR", "kept frames", "energy ratio"},
	}
	type fig11Row struct {
		fb, reduced video.CaptureResult
		ratio       float64
	}
	suite := videoSuite(cfg)
	rowsData, err := mapConcurrent(suite, func(v *video.Video) (fig11Row, error) {
		base, fb, err := captureBoth(v, 2, fig10Threshold)
		if err != nil {
			return fig11Row{}, err
		}
		red := video.EnergyReduction(base, fb)
		// Frame-rate reduction keeps a fraction r of frames and uses
		// ~r of the energy (§V: "the energy consumed is directly
		// proportional to the frame rate"); match FlipBit's budget.
		ratio := 1 - red
		if ratio <= 0 {
			ratio = 0.01
		}
		reduced, err := video.Capture(v, video.CaptureConfig{EncoderN: 0, FrameKeepRatio: ratio})
		if err != nil {
			return fig11Row{}, err
		}
		return fig11Row{fb, reduced, ratio}, nil
	})
	if err != nil {
		return nil, err
	}
	var fbWins int
	var rows int
	for i, v := range suite {
		r := rowsData[i]
		energyRatio := 0.0
		if r.fb.Flash.Energy > 0 {
			energyRatio = float64(r.reduced.Flash.Energy) / float64(r.fb.Flash.Energy)
		}
		t.AddRow(fmt.Sprintf("%d", v.ID), v.Name, f1(r.fb.GlobalPSNR), f1(r.reduced.GlobalPSNR),
			fmt.Sprintf("%.2f", r.ratio), f2(energyRatio))
		rows++
		if r.fb.GlobalPSNR > r.reduced.GlobalPSNR {
			fbWins++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("FlipBit wins PSNR on %d/%d videos at matched flash energy", fbWins, rows),
		"paper: the 2-bit approximation has higher average PSNR than static frame-rate reduction")
	return t, nil
}

// Fig14 sweeps the MAE threshold on the video suite.
func Fig14(cfg Config) (*Table, error) {
	thresholds := []float64{0.5, 1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		thresholds = []float64{0.5, 2, 8, 32}
	}
	t := &Table{
		ID:      "fig14",
		Title:   "threshold sweep on video: energy reduction and PSNR [Fig. 14]",
		Columns: []string{"threshold", "mean energy reduction", "mean PSNR (dB)"},
	}
	suite := videoSuite(cfg)
	bases, err := captureSuite(suite, video.CaptureConfig{EncoderN: 0})
	if err != nil {
		return nil, err
	}
	for _, thr := range thresholds {
		fbs, err := captureSuite(suite, video.CaptureConfig{EncoderN: 2, Threshold: thr})
		if err != nil {
			return nil, err
		}
		var reds, psnrs []float64
		for i := range suite {
			reds = append(reds, video.EnergyReduction(bases[i], fbs[i]))
			psnrs = append(psnrs, fbs[i].MeanPSNR)
		}
		t.AddRow(fmt.Sprintf("%g", thr), pct(mean(reds)), f1(mean(psnrs)))
	}
	t.Notes = append(t.Notes,
		"paper: savings grow and PSNR falls with threshold; savings level off at high thresholds (§V-A)")
	return t, nil
}

// Fig16 sweeps the window size N of the N-bit algorithm.
func Fig16(cfg Config) (*Table, error) {
	ns := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Quick {
		ns = []int{1, 2, 4, 8}
	}
	t := &Table{
		ID:      "fig16",
		Title:   "N-bit window sweep on video, threshold 2 [Fig. 16]",
		Columns: []string{"N", "mean energy reduction", "mean PSNR (dB)"},
	}
	suite := videoSuite(cfg)
	bases, err := captureSuite(suite, video.CaptureConfig{EncoderN: 0})
	if err != nil {
		return nil, err
	}
	for _, n := range ns {
		fbs, err := captureSuite(suite, video.CaptureConfig{EncoderN: n, Threshold: fig10Threshold})
		if err != nil {
			return nil, err
		}
		var reds, psnrs []float64
		for i := range suite {
			reds = append(reds, video.EnergyReduction(bases[i], fbs[i]))
			psnrs = append(psnrs, fbs[i].MeanPSNR)
		}
		t.AddRow(fmt.Sprintf("%d", n), pct(mean(reds)), f1(mean(psnrs)))
	}
	t.Notes = append(t.Notes,
		"paper: N ≥ 2 gives nearly uniform savings; less significant bits matter exponentially less (§V-B)")
	return t, nil
}

// Fig17 reports the lifetime (erase-reduction) increase on video.
func Fig17(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "flash lifetime increase on video [Fig. 17]",
		Columns: []string{"id", "video", "baseline erases", "FlipBit erases", "lifetime increase"},
	}
	suite := videoSuite(cfg)
	pairs, err := captureSuiteBoth(suite, 2, fig10Threshold)
	if err != nil {
		return nil, err
	}
	var incs []float64
	for i, v := range suite {
		base, fb := pairs[i].base, pairs[i].fb
		inc := video.LifetimeIncrease(base, fb)
		incs = append(incs, 1+inc) // geomean over ratios
		t.AddRow(fmt.Sprintf("%d", v.ID), v.Name,
			fmt.Sprintf("%d", base.Flash.Erases), fmt.Sprintf("%d", fb.Flash.Erases), pct(inc))
	}
	t.AddRow("", "GEOMEAN", "", "", pct(geomean(incs)-1))
	t.Notes = append(t.Notes,
		"lifetime proxy: reduction in page erases (§V-C); paper geomean +68% for video")
	return t, nil
}
