package bench

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/video"
)

// videoSuite returns the benchmark clips, trimmed in quick mode.
func videoSuite(cfg Config) []*video.Video {
	suite := video.Suite()
	if !cfg.Quick {
		return suite
	}
	out := make([]*video.Video, 0, len(suite)/2)
	for i, v := range suite {
		if i%2 == 0 { // one of each motion family pair
			c := *v
			c.Frames = 24
			out = append(out, &c)
		}
	}
	return out
}

// fig10Threshold is the operating point of Figs. 10, 13 and 17: the 2-bit
// algorithm at MAE threshold 2 (the paper's headline configuration).
const fig10Threshold = 2.0

// captureBoth runs the exact baseline and FlipBit over one video.
func captureBoth(v *video.Video, encoderN int, threshold float64) (base, fb video.CaptureResult, err error) {
	base, err = video.Capture(v, video.CaptureConfig{EncoderN: 0})
	if err != nil {
		return
	}
	fb, err = video.Capture(v, video.CaptureConfig{EncoderN: encoderN, Threshold: threshold})
	return
}

// Fig10 reports per-video flash-energy reduction and PSNR for the 2-bit
// algorithm at threshold 2.
func Fig10(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "video energy reduction and PSNR, 2-bit approximation [Fig. 10]",
		Columns: []string{"id", "video", "energy reduction", "PSNR (dB)", "flash energy", "baseline"},
	}
	var reds, psnrs []float64
	for _, v := range videoSuite(cfg) {
		base, fb, err := captureBoth(v, 2, fig10Threshold)
		if err != nil {
			return nil, err
		}
		red := video.EnergyReduction(base, fb)
		reds = append(reds, red)
		psnrs = append(psnrs, fb.MeanPSNR)
		t.AddRow(fmt.Sprintf("%d", v.ID), v.Name, pct(red), f1(fb.MeanPSNR),
			fb.Flash.Energy.String(), base.Flash.Energy.String())
	}
	t.AddRow("", "MEAN", pct(mean(reds)), f1(mean(psnrs)), "", "")
	t.Notes = append(t.Notes,
		"paper: 68% mean energy reduction at 42 dB mean PSNR; ≥40 dB is visually lossless [16,41]")
	return t, nil
}

// Fig11 compares FlipBit against statically reducing the frame rate to the
// stride whose energy is closest to FlipBit's measured energy.
func Fig11(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "PSNR: 2-bit FlipBit vs frame-rate reduction at matched energy [Fig. 11]",
		Columns: []string{"id", "video", "FlipBit PSNR", "reduced-rate PSNR", "kept frames", "energy ratio"},
	}
	var fbWins int
	var rows int
	for _, v := range videoSuite(cfg) {
		base, fb, err := captureBoth(v, 2, fig10Threshold)
		if err != nil {
			return nil, err
		}
		red := video.EnergyReduction(base, fb)
		// Frame-rate reduction keeps a fraction r of frames and uses
		// ~r of the energy (§V: "the energy consumed is directly
		// proportional to the frame rate"); match FlipBit's budget.
		ratio := 1 - red
		if ratio <= 0 {
			ratio = 0.01
		}
		reduced, err := video.Capture(v, video.CaptureConfig{EncoderN: 0, FrameKeepRatio: ratio})
		if err != nil {
			return nil, err
		}
		energyRatio := 0.0
		if fb.Flash.Energy > 0 {
			energyRatio = float64(reduced.Flash.Energy) / float64(fb.Flash.Energy)
		}
		t.AddRow(fmt.Sprintf("%d", v.ID), v.Name, f1(fb.GlobalPSNR), f1(reduced.GlobalPSNR),
			fmt.Sprintf("%.2f", ratio), f2(energyRatio))
		rows++
		if fb.GlobalPSNR > reduced.GlobalPSNR {
			fbWins++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("FlipBit wins PSNR on %d/%d videos at matched flash energy", fbWins, rows),
		"paper: the 2-bit approximation has higher average PSNR than static frame-rate reduction")
	return t, nil
}

// Fig14 sweeps the MAE threshold on the video suite.
func Fig14(cfg Config) (*Table, error) {
	thresholds := []float64{0.5, 1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		thresholds = []float64{0.5, 2, 8, 32}
	}
	t := &Table{
		ID:      "fig14",
		Title:   "threshold sweep on video: energy reduction and PSNR [Fig. 14]",
		Columns: []string{"threshold", "mean energy reduction", "mean PSNR (dB)"},
	}
	suite := videoSuite(cfg)
	bases := make([]video.CaptureResult, len(suite))
	for i, v := range suite {
		b, err := video.Capture(v, video.CaptureConfig{EncoderN: 0})
		if err != nil {
			return nil, err
		}
		bases[i] = b
	}
	for _, thr := range thresholds {
		var reds, psnrs []float64
		for i, v := range suite {
			fb, err := video.Capture(v, video.CaptureConfig{EncoderN: 2, Threshold: thr})
			if err != nil {
				return nil, err
			}
			reds = append(reds, video.EnergyReduction(bases[i], fb))
			psnrs = append(psnrs, fb.MeanPSNR)
		}
		t.AddRow(fmt.Sprintf("%g", thr), pct(mean(reds)), f1(mean(psnrs)))
	}
	t.Notes = append(t.Notes,
		"paper: savings grow and PSNR falls with threshold; savings level off at high thresholds (§V-A)")
	return t, nil
}

// Fig16 sweeps the window size N of the N-bit algorithm.
func Fig16(cfg Config) (*Table, error) {
	ns := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Quick {
		ns = []int{1, 2, 4, 8}
	}
	t := &Table{
		ID:      "fig16",
		Title:   "N-bit window sweep on video, threshold 2 [Fig. 16]",
		Columns: []string{"N", "mean energy reduction", "mean PSNR (dB)"},
	}
	suite := videoSuite(cfg)
	bases := make([]video.CaptureResult, len(suite))
	for i, v := range suite {
		b, err := video.Capture(v, video.CaptureConfig{EncoderN: 0})
		if err != nil {
			return nil, err
		}
		bases[i] = b
	}
	for _, n := range ns {
		var reds, psnrs []float64
		for i, v := range suite {
			fb, err := video.Capture(v, video.CaptureConfig{EncoderN: n, Threshold: fig10Threshold})
			if err != nil {
				return nil, err
			}
			reds = append(reds, video.EnergyReduction(bases[i], fb))
			psnrs = append(psnrs, fb.MeanPSNR)
		}
		t.AddRow(fmt.Sprintf("%d", n), pct(mean(reds)), f1(mean(psnrs)))
	}
	t.Notes = append(t.Notes,
		"paper: N ≥ 2 gives nearly uniform savings; less significant bits matter exponentially less (§V-B)")
	return t, nil
}

// Fig17 reports the lifetime (erase-reduction) increase on video.
func Fig17(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "flash lifetime increase on video [Fig. 17]",
		Columns: []string{"id", "video", "baseline erases", "FlipBit erases", "lifetime increase"},
	}
	var incs []float64
	for _, v := range videoSuite(cfg) {
		base, fb, err := captureBoth(v, 2, fig10Threshold)
		if err != nil {
			return nil, err
		}
		inc := video.LifetimeIncrease(base, fb)
		incs = append(incs, 1+inc) // geomean over ratios
		t.AddRow(fmt.Sprintf("%d", v.ID), v.Name,
			fmt.Sprintf("%d", base.Flash.Erases), fmt.Sprintf("%d", fb.Flash.Erases), pct(inc))
	}
	t.AddRow("", "GEOMEAN", "", "", pct(geomean(incs)-1))
	t.Notes = append(t.Notes,
		"lifetime proxy: reduction in page erases (§V-C); paper geomean +68% for video")
	return t, nil
}
