package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Quick: true}

// TestRegistryComplete: every paper table and figure has an experiment.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "table1", "table2", "fig4", "fig5", "table3",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "table4",
	}
	for _, id := range want {
		if ByID(id) == nil {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown ID should return nil")
	}
}

// TestAllExperimentsRunQuick: every registered experiment completes and
// renders in quick mode. This is the integration test of the whole stack.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(quick)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if !strings.Contains(buf.String(), strings.ToUpper(e.ID)) {
				t.Error("render missing experiment ID")
			}
		})
	}
}

// parsePct turns "12.3%" into 0.123.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v / 100
}

// TestFig10Shape: substantial mean savings at high PSNR, with static clips
// saving more than high-motion clips.
func TestFig10Shape(t *testing.T) {
	tab, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[1] != "MEAN" {
		t.Fatalf("expected MEAN row, got %v", last)
	}
	meanRed := parsePct(t, last[2])
	if meanRed < 0.3 {
		t.Errorf("mean video energy reduction %.2f too low (paper: 0.68)", meanRed)
	}
	meanPSNR, _ := strconv.ParseFloat(last[3], 64)
	if meanPSNR < 40 {
		t.Errorf("mean PSNR %.1f below the visually-lossless bar (paper: 42)", meanPSNR)
	}
	first := parsePct(t, tab.Rows[0][2])
	lastVid := parsePct(t, tab.Rows[len(tab.Rows)-2][2])
	if first <= lastVid {
		t.Errorf("static clip (%.2f) should out-save high-motion clip (%.2f)", first, lastVid)
	}
}

// TestFig11Shape: FlipBit must beat frame-rate reduction on average PSNR at
// matched flash energy (the paper's claim is about the average).
func TestFig11Shape(t *testing.T) {
	tab, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	var fbSum, rrSum float64
	for _, row := range tab.Rows {
		fb, _ := strconv.ParseFloat(row[2], 64)
		rr, _ := strconv.ParseFloat(row[3], 64)
		fbSum += fb
		rrSum += rr
	}
	if fbSum <= rrSum {
		t.Errorf("FlipBit mean PSNR %.1f <= frame-rate reduction %.1f",
			fbSum/float64(len(tab.Rows)), rrSum/float64(len(tab.Rows)))
	}
}

// TestFig14Monotone: energy reduction non-decreasing, PSNR non-increasing
// with threshold.
func TestFig14Monotone(t *testing.T) {
	tab, err := Fig14(quick)
	if err != nil {
		t.Fatal(err)
	}
	prevRed, prevPSNR := -1.0, 1e9
	for _, row := range tab.Rows {
		red := parsePct(t, row[1])
		psnr, _ := strconv.ParseFloat(row[2], 64)
		if red < prevRed-0.02 {
			t.Errorf("threshold %s: reduction %.3f fell below %.3f", row[0], red, prevRed)
		}
		if psnr > prevPSNR+0.5 {
			t.Errorf("threshold %s: PSNR %.1f rose above %.1f", row[0], psnr, prevPSNR)
		}
		prevRed, prevPSNR = red, psnr
	}
}

// TestFig16Shape: the paper's §V-B finding — n = 1's cruder approximations
// fail the error gate more often, so it saves clearly less energy, while
// n >= 2 is nearly uniform, all at comparable (threshold-bounded) quality.
func TestFig16Shape(t *testing.T) {
	tab, err := Fig16(quick)
	if err != nil {
		t.Fatal(err)
	}
	var red1, red2, redMin2, redMax2 float64
	redMin2 = 1
	for _, row := range tab.Rows {
		red := parsePct(t, row[1])
		psnr, _ := strconv.ParseFloat(row[2], 64)
		if psnr < 40 {
			t.Errorf("n=%s PSNR %.1f below the quality bar", row[0], psnr)
		}
		if row[0] == "1" {
			red1 = red
			continue
		}
		if row[0] == "2" {
			red2 = red
		}
		if red < redMin2 {
			redMin2 = red
		}
		if red > redMax2 {
			redMax2 = red
		}
	}
	if red1 >= red2 {
		t.Errorf("n=1 savings %.2f should be below n=2 savings %.2f", red1, red2)
	}
	if redMax2-redMin2 > 0.15 {
		t.Errorf("n>=2 savings spread %.2f..%.2f not nearly uniform", redMin2, redMax2)
	}
}

// TestFig17Positive: lifetime increases on every clip.
func TestFig17Positive(t *testing.T) {
	tab, err := Fig17(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] == "GEOMEAN" {
			if inc := parsePct(t, row[4]); inc <= 0 {
				t.Errorf("geomean lifetime increase %.2f not positive", inc)
			}
			continue
		}
		if inc := parsePct(t, row[4]); inc < 0 {
			t.Errorf("video %s lifetime decreased: %.2f", row[1], inc)
		}
	}
}

// TestFig12Shape: every model keeps accuracy within 1% at its tuned
// threshold while saving energy.
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains all four models")
	}
	tab, err := Fig12(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[0] == "MEAN" {
			if red := parsePct(t, row[4]); red < 0.15 {
				t.Errorf("mean ML energy reduction %.2f too low (paper: 0.39)", red)
			}
			continue
		}
		base, _ := strconv.ParseFloat(row[2], 64)
		acc, _ := strconv.ParseFloat(row[3], 64)
		if acc < base-0.011 {
			t.Errorf("%s: accuracy %.3f dropped more than 1%% below %.3f", row[0], acc, base)
		}
	}
}

// TestFig13Quality: detection F1 on approximated video stays high.
func TestFig13Quality(t *testing.T) {
	tab, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[1] != "GEOMEAN" {
		t.Fatalf("expected GEOMEAN row, got %v", last)
	}
	f1, _ := strconv.ParseFloat(last[4], 64)
	if f1 < 0.85 {
		t.Errorf("geomean F1 %.2f too low (paper: 0.96)", f1)
	}
}

// TestTableIVShape is covered in internal/hw; here we just check rendering
// carries both configurations.
func TestTableIVRows(t *testing.T) {
	tab, err := TableIV(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table IV should have 3 rows (configurable, n=2, n=2 PLA), got %d", len(tab.Rows))
	}
}

func TestRenderAlignment(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"a", "long-column"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("render too short: %q", buf.String())
	}
}

// TestWritePathShape pins the tentpole's scaling claim: on a 4-bank device
// the commit benchmark must show at least 2× device-time throughput at 4
// workers versus 1, and the report must serialize to JSON.
func TestWritePathShape(t *testing.T) {
	rep, err := RunWritePath(quick)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Banks != 4 {
		t.Fatalf("expected a 4-bank device, got %d", rep.Banks)
	}
	var at1, at4 float64
	for _, r := range rep.Rows {
		if r.Workers == 1 {
			at1 = r.DeviceOpsPerSec
		}
		if r.Workers == 4 {
			at4 = r.DeviceOpsPerSec
		}
	}
	if at1 <= 0 || at4 <= 0 {
		t.Fatalf("missing 1- or 4-worker row: %+v", rep.Rows)
	}
	if at4 < 2*at1 {
		t.Errorf("4-worker throughput %.0f ops/s is not ≥2× the 1-worker %.0f ops/s", at4, at1)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup_vs_1_worker") {
		t.Error("JSON report missing speedup field")
	}
}

// TestEncodeKernelShape runs the encodekernel experiment at quick scale and
// requires the report to satisfy its own artifact schema: n-bit kernels
// ≥3× scalar, no end-to-end regression, and both paths in exact agreement.
func TestEncodeKernelShape(t *testing.T) {
	rep, err := RunEncodeKernel(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.StatsMatch {
		t.Fatal("kernel and scalar paths diverged")
	}
	if raceEnabled {
		t.Log("race detector on: skipping the schema's timing gates (instrumentation overhead swamps kernel-vs-scalar ratios)")
		return
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateArtifact("encode", buf.Bytes()); err != nil {
		t.Errorf("quick-scale report fails its own schema: %v", err)
	}
}

// TestKVScaleShape runs the store-scale experiment at quick scale and
// requires the report to satisfy its own artifact schema: GC fired under
// load, checkpoints committed, space amplification within the 2.0 gate, and
// the checkpointed mount ≥10× the full scan in device time.
func TestKVScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("drives thousands of store operations; skipped in -short")
	}
	rep, err := RunKVScale(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 2 {
		t.Fatalf("expected at least 2 key counts, got %d", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		t.Logf("keys=%d ops=%d compactions=%d checkpoints=%d amp=%.2f speedup=%.1f (scan %.1fms, ckpt %.1fms device)",
			r.Keys, r.Ops, r.Compactions, r.Checkpoints, r.SpaceAmp,
			r.MountSpeedup, r.ScanMountDeviceMs, r.CkptMountDeviceMs)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateArtifact("kvscale", buf.Bytes()); err != nil {
		t.Errorf("quick-scale report fails its own schema: %v", err)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{4, 1}); g != 2 {
		t.Errorf("geomean(4,1) = %v", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
}
