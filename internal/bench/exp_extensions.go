package bench

import (
	"fmt"
	"math"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/compress"
	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/ftl"
	"github.com/flipbit-sim/flipbit/internal/kvs"
	"github.com/flipbit-sim/flipbit/internal/rival"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// smallSpec is a compact part used by the extension experiments.
func smallSpec(pages int) flash.Spec {
	s := flash.DefaultSpec()
	s.NumPages = pages
	return s
}

// ExpRelated compares FlipBit against the §VII erase-reduction families on
// a shared workload: persisting a drifting 64-byte sensor record, many
// times over.
func ExpRelated(cfg Config) (*Table, error) {
	records := 3000
	if cfg.Quick {
		records = 600
	}
	const recSize = 64

	// The drifting record stream (identical for every technique).
	makeStream := func() func() []byte {
		rng := xrand.New(404)
		rec := make([]byte, recSize)
		for i := range rec {
			rec[i] = rng.Byte()
		}
		return func() []byte {
			for i := range rec {
				rec[i] = byte(int(rec[i]) + rng.Intn(5) - 2)
			}
			out := make([]byte, recSize)
			copy(out, rec)
			return out
		}
	}

	t := &Table{
		ID:    "exp-related",
		Title: "erase-reduction techniques on a drifting sensor record (§VII)",
		Columns: []string{"technique", "erases", "flash energy", "footprint",
			"exact?", "mean |error|"},
	}

	// Naive in-place exact writes.
	{
		dev := core.MustNewDevice(smallSpec(16))
		next := makeStream()
		for i := 0; i < records; i++ {
			if err := dev.Write(0, next()); err != nil {
				return nil, err
			}
		}
		st := dev.Flash().Stats()
		t.AddRow("in-place exact", fmt.Sprintf("%d", st.Erases), st.Energy.String(),
			"1.0×", "yes", "0")
	}

	// Log-structured / masked-overwrite appending [25].
	{
		dev := core.MustNewDevice(smallSpec(16))
		lw, err := rival.NewLogWriter(dev, 0, recSize)
		if err != nil {
			return nil, err
		}
		next := makeStream()
		for i := 0; i < records; i++ {
			if _, err := lw.Append(next()); err != nil {
				return nil, err
			}
		}
		st := dev.Flash().Stats()
		t.AddRow("log-structured [25]", fmt.Sprintf("%d", st.Erases), st.Energy.String(),
			"1.0×*", "yes", "0")
	}

	// Rivest–Shamir WOM coding [39,57,58,98].
	{
		dev := core.MustNewDevice(smallSpec(16))
		w := rival.NewWOM(dev, 0)
		buf := make([]byte, w.Capacity())
		next := makeStream()
		for i := 0; i < records; i++ {
			copy(buf, next())
			if err := w.Write(buf); err != nil {
				return nil, err
			}
		}
		st := dev.Flash().Stats()
		t.AddRow("WOM ⟨2,2⟩ code", fmt.Sprintf("%d", st.Erases), st.Energy.String(),
			"1.5×", "yes", "0")
	}

	// Temporal-delta + static-Huffman compression over a byte-level
	// append log [45,65,72]. Each record is stored as its bytewise
	// difference from the previous record, entropy coded with a shared
	// table; fewer bytes per record stretch each page across more
	// records before its erase.
	{
		dev := core.MustNewDevice(smallSpec(16))
		fl := dev.Flash()
		// Train the shared table on a prefix of the stream.
		trainNext := makeStream()
		var training []byte
		tPrev := make([]byte, recSize)
		for i := 0; i < 32; i++ {
			rec := trainNext()
			for j := range rec {
				training = append(training, rec[j]-tPrev[j])
			}
			copy(tPrev, rec)
		}
		coder := compress.NewStaticCoder(training)

		next := makeStream()
		cursor := 0
		var compressedBytes int
		prev := make([]byte, recSize)
		diff := make([]byte, recSize)
		for i := 0; i < records; i++ {
			rec := next()
			for j := range rec {
				diff[j] = rec[j] - prev[j]
			}
			copy(prev, rec)
			payload := coder.Encode(diff)
			compressedBytes += len(payload)
			// Length-prefixed circular append: advance to the next
			// page when the record does not fit, erasing consumed
			// pages on re-entry.
			need := len(payload) + 1
			ps := fl.Spec().PageSize
			if cursor%ps+need > ps {
				cursor = (cursor/ps + 1) * ps
			}
			if cursor >= fl.Spec().Size() {
				cursor = 0
			}
			// Entering a page: reclaim it if a previous lap left
			// data behind (its first byte is a length prefix).
			if cursor%ps == 0 && fl.Peek(cursor) != 0xFF {
				if err := fl.ErasePage(cursor / ps); err != nil {
					return nil, err
				}
			}
			if err := fl.ProgramByte(cursor, byte(len(payload))); err != nil {
				return nil, err
			}
			for j, b := range payload {
				if err := fl.ProgramByte(cursor+1+j, b); err != nil {
					return nil, err
				}
			}
			cursor += need
		}
		st := fl.Stats()
		ratio := float64(compressedBytes) / float64(records*recSize)
		t.AddRow(fmt.Sprintf("delta+Huffman log (%.2fx data)", ratio),
			fmt.Sprintf("%d", st.Erases), st.Energy.String(), "1.0×*", "yes", "0")
	}

	// Log-structured KV store (the flash-file-system family [24,26,43,94]):
	// each record is a Put under one key; the store appends and GCs.
	{
		dev := core.MustNewDevice(smallSpec(16))
		store, err := kvs.Open(dev)
		if err != nil {
			return nil, err
		}
		next := makeStream()
		for i := 0; i < records; i++ {
			if err := store.Put("record", next()); err != nil {
				return nil, err
			}
		}
		st := dev.Flash().Stats()
		t.AddRow("KV store (file-system family)", fmt.Sprintf("%d", st.Erases),
			st.Energy.String(), "1.0×*", "yes", "0")
	}

	// FlipBit.
	{
		dev := core.MustNewDevice(smallSpec(16))
		if err := dev.SetApproxRegion(0, dev.Flash().Spec().PageSize); err != nil {
			return nil, err
		}
		dev.SetThreshold(2)
		next := makeStream()
		var tr approx.ErrorTracker
		stored := make([]byte, recSize)
		for i := 0; i < records; i++ {
			rec := next()
			if err := dev.Write(0, rec); err != nil {
				return nil, err
			}
			if err := dev.Read(0, stored); err != nil {
				return nil, err
			}
			for j := range rec {
				tr.Add(uint32(rec[j]), uint32(stored[j]))
			}
		}
		st := dev.Flash().Stats()
		t.AddRow("FlipBit (thr 2)", fmt.Sprintf("%d", st.Erases), st.Energy.String(),
			"1.0×", "no", f2(tr.MAE()))
	}

	t.Notes = append(t.Notes,
		"*the log approaches serve 'latest record' from a moving slot and must be decoded",
		" on read, so they forfeit fixed addresses, random access and XIP; WOM pays 1.5×",
		" footprint; compression also spends CPU cycles per record. FlipBit keeps in-place",
		" exact-address semantics and spends bounded accuracy instead (§VII) — and being",
		" orthogonal, it composes with any of these.")
	return t, nil
}

// ExpWear demonstrates §II-B's composition claim: FlipBit reduces the
// number of erases, static wear leveling spreads them, and the combination
// compounds. Workload: one hot logical page of drifting data plus cold
// pages.
func ExpWear(cfg Config) (*Table, error) {
	writes := 2000
	if cfg.Quick {
		writes = 500
	}
	const pages = 16

	run := func(useFTL, useFlipBit bool) (maxWear uint32, erases uint64, err error) {
		dev := core.MustNewDevice(smallSpec(pages))
		ps := dev.Flash().Spec().PageSize
		if useFlipBit {
			if err := dev.SetApproxRegion(0, pages*ps); err != nil {
				return 0, 0, err
			}
			dev.SetThreshold(2)
		}
		var f *ftl.FTL
		if useFTL {
			f = ftl.New(dev, ftl.WithSwapDelta(8))
		}
		write := func(addr int, data []byte) error {
			if f != nil {
				return f.Write(addr, data)
			}
			return dev.Write(addr, data)
		}
		rng := xrand.New(808)
		hot := make([]byte, ps)
		for i := range hot {
			hot[i] = rng.Byte()
		}
		// Seed some cold content.
		for p := 1; p < pages; p++ {
			cold := make([]byte, ps)
			for i := range cold {
				cold[i] = rng.Byte()
			}
			if err := write(p*ps, cold); err != nil {
				return 0, 0, err
			}
		}
		for i := 0; i < writes; i++ {
			for j := range hot {
				hot[j] = byte(int(hot[j]) + rng.Intn(5) - 2)
			}
			if err := write(0, hot); err != nil {
				return 0, 0, err
			}
		}
		return dev.Flash().MaxWear(), dev.Flash().Stats().Erases, nil
	}

	t := &Table{
		ID:    "exp-wear",
		Title: "wear leveling × FlipBit on a hot page (§II-B composition)",
		Columns: []string{"configuration", "total erases", "max page wear",
			"lifetime vs plain"},
	}
	var plainWear uint32
	for _, c := range []struct {
		name            string
		useFTL, useFlip bool
	}{
		{"plain device", false, false},
		{"wear-leveling FTL", true, false},
		{"FlipBit", false, true},
		{"FlipBit + FTL", true, true},
	} {
		maxWear, erases, err := run(c.useFTL, c.useFlip)
		if err != nil {
			return nil, err
		}
		if c.name == "plain device" {
			plainWear = maxWear
		}
		life := "1.0×"
		if maxWear > 0 && plainWear > 0 {
			life = fmt.Sprintf("%.1f×", float64(plainWear)/float64(maxWear))
		} else if maxWear == 0 {
			life = "∞ (no erases)"
		}
		t.AddRow(c.name, fmt.Sprintf("%d", erases), fmt.Sprintf("%d", maxWear), life)
	}
	t.Notes = append(t.Notes,
		"lifetime ∝ 1/(max page wear); FlipBit cuts total erases, the FTL spreads the",
		"rest, and the combination compounds — the orthogonality §II-B claims")
	return t, nil
}

// AblationFloat exercises the §VI floating-point extension: a correlated
// float32 stream stored through the mantissa-window encoder at several M.
func AblationFloat(cfg Config) (*Table, error) {
	rounds := 400
	if cfg.Quick {
		rounds = 120
	}
	const values = 256 // 1 KiB of float32 per round

	t := &Table{
		ID:    "ablation-float",
		Title: "float32 mantissa-window approximation (§VI)",
		Columns: []string{"mantissa window M", "energy reduction",
			"page fallback rate", "mean relative error", "analytic bound"},
	}

	stream := func() func() []float32 {
		rng := xrand.New(606)
		vals := make([]float32, values)
		for i := range vals {
			vals[i] = float32(50 + 20*rng.NormFloat64())
		}
		return func() []float32 {
			for i := range vals {
				vals[i] *= 1 + float32(0.0008*rng.NormFloat64())
			}
			out := make([]float32, values)
			copy(out, vals)
			return out
		}
	}

	run := func(enc approx.Encoder) (flash.Stats, core.Stats, float64, error) {
		dev := core.MustNewDevice(smallSpec(32))
		if enc != nil {
			dev.SetEncoder(enc)
			if err := dev.SetApproxRegion(0, 4*values); err != nil {
				return flash.Stats{}, core.Stats{}, 0, err
			}
			if err := dev.SetWidth(bits.W32); err != nil {
				return flash.Stats{}, core.Stats{}, 0, err
			}
			// The structural sign/exponent guarantee bounds the
			// error; the MAE gate is disabled (§VI notes the error
			// hardware would switch to floating point).
			dev.SetThreshold(float64(core.ThresholdUnlimited))
		}
		next := stream()
		buf := make([]byte, 4*values)
		stored := make([]byte, 4*values)
		var relSum float64
		var relN int
		for r := 0; r < rounds; r++ {
			vals := next()
			for i, v := range vals {
				bits.StoreLE(buf[4*i:], math.Float32bits(v), bits.W32)
			}
			if err := dev.Write(0, buf); err != nil {
				return flash.Stats{}, core.Stats{}, 0, err
			}
			if err := dev.Read(0, stored); err != nil {
				return flash.Stats{}, core.Stats{}, 0, err
			}
			for i, v := range vals {
				got := bits.LoadLE(stored[4*i:], bits.W32)
				relSum += approx.RelativeError(math.Float32bits(v), got)
				relN++
			}
		}
		return dev.Flash().Stats(), dev.Stats(), relSum / float64(relN), nil
	}

	baseStats, _, _, err := run(nil)
	if err != nil {
		return nil, err
	}
	for _, m := range []int{8, 12, 16, 20} {
		enc := approx.MustFloat32(m, nil)
		st, ctrl, rel, err := run(enc)
		if err != nil {
			return nil, err
		}
		red := 1 - float64(st.Energy)/float64(baseStats.Energy)
		fallback := 0.0
		if total := ctrl.PagesApprox + ctrl.PagesExact; total > 0 {
			fallback = float64(ctrl.PagesExact) / float64(total)
		}
		t.AddRow(fmt.Sprintf("%d of 23 bits", m), pct(red), pct(fallback),
			fmt.Sprintf("%.2e", rel), fmt.Sprintf("%.2e", enc.MaxRelativeError()))
	}
	t.Notes = append(t.Notes,
		"sign and exponent stay exact by construction; larger M = more savings, more",
		"(still bounded) relative error — §VI's 'M is application dependent' dial.",
		"Small windows save nothing here because one carry past the window in any of a",
		"page's 64 floats forces that whole page exact — window size must exceed the",
		"data's drift magnitude at page granularity")
	return t, nil
}
