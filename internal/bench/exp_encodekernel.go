package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// The encodekernel experiment measures the table-driven batch encode
// kernels (internal/approx/kernel.go) against the per-value scalar
// reference path, at two levels:
//
//   - micro: EncodeSlice versus a LoadLE/Approximate/StoreLE loop over the
//     same random span, per encoder and width — the encode stage in
//     isolation;
//   - end-to-end: the serial write-path workload replayed on two devices,
//     one on the kernels (the default) and one forced onto the scalar path
//     with core.WithScalarEncode, with the controller statistics of both
//     required to match exactly. The comparison runs twice: once on the
//     SLC part with its default n-bit encoder, and once on the same part
//     derated to MLC with the n-cell encoder — the configuration that ran
//     scalar-only before the cell kernels existed.
//
// Results land in BENCH_encode.json; validateEncode pins the acceptance
// invariants (≥3× on an n-bit micro row, ≥5× on an n-cell micro row, SLC
// e2e speedup ≥1, MLC e2e speedup ≥2, stats matched).

// EncodeKernelRow is one micro-benchmark configuration.
type EncodeKernelRow struct {
	Encoder          string  `json:"encoder"`
	Family           string  `json:"family"` // "nbit", "ncell", "onebit" or "exact"
	WidthBits        int     `json:"width_bits"`
	Values           int     `json:"values"`
	ScalarNsPerValue float64 `json:"scalar_ns_per_value"`
	KernelNsPerValue float64 `json:"kernel_ns_per_value"`
	Speedup          float64 `json:"speedup"`
}

// EncodeKernelReport is the machine-readable result written to
// BENCH_encode.json.
type EncodeKernelReport struct {
	Seed      uint64            `json:"seed"`
	SpanBytes int               `json:"span_bytes"`
	GoMaxProc int               `json:"gomaxprocs"`
	Rows      []EncodeKernelRow `json:"rows"`

	E2EOps           int     `json:"e2e_ops"`
	E2EScalarNsPerOp float64 `json:"e2e_scalar_ns_per_op"`
	E2EKernelNsPerOp float64 `json:"e2e_kernel_ns_per_op"`
	E2ESpeedup       float64 `json:"e2e_speedup"`

	// The MLC twin of the end-to-end comparison: the same workload on the
	// part derated to MLC with the n-cell encoder, where the scalar device
	// is exactly the pre-kernel MLC write path.
	E2EMLCOps           int     `json:"e2e_mlc_ops"`
	E2EMLCScalarNsPerOp float64 `json:"e2e_mlc_scalar_ns_per_op"`
	E2EMLCKernelNsPerOp float64 `json:"e2e_mlc_kernel_ns_per_op"`
	E2EMLCSpeedup       float64 `json:"e2e_mlc_speedup"`

	StatsMatch bool `json:"stats_match"`
}

// encodeKernelConfigs are the measured (encoder, width) pairs: the hot
// n-bit encoders at the widths the workloads use, plus OneBit and Exact.
func encodeKernelConfigs() []struct {
	enc    approx.Encoder
	family string
	w      bits.Width
} {
	return []struct {
		enc    approx.Encoder
		family string
		w      bits.Width
	}{
		{approx.OneBit{}, "onebit", bits.W32},
		{approx.MustNBit(2), "nbit", bits.W8},
		{approx.MustNBit(2), "nbit", bits.W32},
		{approx.MustNBit(8), "nbit", bits.W32},
		{approx.Exact{}, "exact", bits.W32},
		{approx.MustNCell(1), "ncell", bits.W32},
		{approx.MustNCell(2), "ncell", bits.W8},
		{approx.MustNCell(2), "ncell", bits.W32},
		{approx.MustNCell(4), "ncell", bits.W32},
	}
}

// RunEncodeKernel measures the kernels and returns the report.
func RunEncodeKernel(cfg Config) (*EncodeKernelReport, error) {
	const seed = 0xE4C0
	const span = 4096
	reps := 400
	e2eOps := 8192
	if cfg.Quick {
		reps = 50
		e2eOps = 2048
	}
	rep := &EncodeKernelReport{
		Seed:       seed,
		SpanBytes:  span,
		GoMaxProc:  runtime.GOMAXPROCS(0),
		StatsMatch: true,
	}

	rng := xrand.New(seed)
	prev := make([]byte, span)
	exact := make([]byte, span)
	kernelOut := make([]byte, span)
	scalarOut := make([]byte, span)
	for i := range prev {
		prev[i], exact[i] = rng.Byte(), rng.Byte()
	}

	for _, c := range encodeKernelConfigs() {
		be, ok := c.enc.(approx.BatchEncoder)
		if !ok {
			return nil, fmt.Errorf("%s has no batch kernel", c.enc.Name())
		}
		vb := c.w.Bytes()
		values := span / vb

		be.EncodeSlice(prev, exact, kernelOut, c.w) // derive lazy LUTs up front
		kStart := time.Now()
		for r := 0; r < reps; r++ {
			be.EncodeSlice(prev, exact, kernelOut, c.w)
		}
		kernelNs := float64(time.Since(kStart).Nanoseconds()) / float64(reps*values)

		sStart := time.Now()
		for r := 0; r < reps; r++ {
			for i := 0; i+vb <= span; i += vb {
				p := bits.LoadLE(prev[i:], c.w)
				e := bits.LoadLE(exact[i:], c.w)
				bits.StoreLE(scalarOut[i:], c.enc.Approximate(p, e, c.w), c.w)
			}
		}
		scalarNs := float64(time.Since(sStart).Nanoseconds()) / float64(reps*values)

		// The speedup claim is only meaningful if both paths computed the
		// same thing; a mismatch poisons the whole artifact.
		if !bytes.Equal(kernelOut, scalarOut) {
			rep.StatsMatch = false
		}

		rep.Rows = append(rep.Rows, EncodeKernelRow{
			Encoder:          c.enc.Name(),
			Family:           c.family,
			WidthBits:        int(c.w),
			Values:           values,
			ScalarNsPerValue: scalarNs,
			KernelNsPerValue: kernelNs,
			Speedup:          scalarNs / kernelNs,
		})
	}

	// End-to-end: the serial write-path workload on a kernel device versus
	// a scalar-forced device. Same plan, same seed, same threshold. e2e
	// compares kernel (no extra options) against scalar (WithScalarEncode)
	// on the given spec and returns (kernel ns/op, scalar ns/op, ops).
	e2e := func(spec flash.Spec, opts ...core.Option) (float64, float64, int, error) {
		plan := newWritePathPlan(spec, spec.Banks, e2eOps)
		warm := newWritePathPlan(spec, spec.Banks, 256*spec.Banks)
		run := func(extra ...core.Option) (time.Duration, core.Stats, error) {
			d, err := core.NewDevice(spec, append(append([]core.Option{}, opts...), extra...)...)
			if err != nil {
				return 0, core.Stats{}, err
			}
			if err := d.SetApproxRegion(0, spec.Size()); err != nil {
				return 0, core.Stats{}, err
			}
			d.SetThreshold(4)
			warm.run(d, 1)
			d.ResetStats()
			elapsed, _, _ := plan.run(d, 1)
			return elapsed, d.Stats(), nil
		}
		kElapsed, kStats, err := run()
		if err != nil {
			return 0, 0, 0, err
		}
		sElapsed, sStats, err := run(core.WithScalarEncode())
		if err != nil {
			return 0, 0, 0, err
		}
		if kStats != sStats {
			rep.StatsMatch = false
		}
		ops := (e2eOps / spec.Banks) * spec.Banks
		return float64(kElapsed.Nanoseconds()) / float64(ops),
			float64(sElapsed.Nanoseconds()) / float64(ops), ops, nil
	}

	spec := cfg.applyCell(writePathSpec())
	kNs, sNs, ops, err := e2e(spec)
	if err != nil {
		return nil, err
	}
	rep.E2EOps = ops
	rep.E2EKernelNsPerOp = kNs
	rep.E2EScalarNsPerOp = sNs
	rep.E2ESpeedup = sNs / kNs

	// The MLC twin: same part derated to two bits per cell, encoding with
	// the n-cell window. Before the cell kernels this configuration was
	// pinned to the scalar path, so its speedup is the headline number.
	mlcSpec := flash.DensitySpec(writePathSpec(), flash.MLC)
	kNs, sNs, ops, err = e2e(mlcSpec, core.WithEncoder(approx.MustNCell(2)))
	if err != nil {
		return nil, err
	}
	rep.E2EMLCOps = ops
	rep.E2EMLCKernelNsPerOp = kNs
	rep.E2EMLCScalarNsPerOp = sNs
	rep.E2EMLCSpeedup = sNs / kNs
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *EncodeKernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExpEncodeKernel is the registry wrapper: the report as a rendered table.
func ExpEncodeKernel(cfg Config) (*Table, error) {
	rep, err := RunEncodeKernel(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "encodekernel",
		Title:   "batch encode kernels vs scalar per-value encoding",
		Columns: []string{"encoder", "width", "scalar ns/val", "kernel ns/val", "speedup"},
	}
	for _, r := range rep.Rows {
		t.AddRow(r.Encoder, fmt.Sprintf("%d", r.WidthBits),
			f2(r.ScalarNsPerValue), f2(r.KernelNsPerValue),
			fmt.Sprintf("%.1fx", r.Speedup))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("end-to-end serial write path: scalar %.0f ns/op, kernel %.0f ns/op (%.2fx), stats match: %v",
			rep.E2EScalarNsPerOp, rep.E2EKernelNsPerOp, rep.E2ESpeedup, rep.StatsMatch),
		fmt.Sprintf("end-to-end MLC write path (n-cell encoder): scalar %.0f ns/op, kernel %.0f ns/op (%.2fx)",
			rep.E2EMLCScalarNsPerOp, rep.E2EMLCKernelNsPerOp, rep.E2EMLCSpeedup),
		"kernel path: one EncodeSlice per page span with in-kernel stats; scalar path: LoadLE + Approximate + StoreLE per value",
		"outputs of both paths are compared in-run; a divergence clears stats_match and invalidates the artifact")
	return t, nil
}
