package bench

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/hw"
	"github.com/flipbit-sim/flipbit/internal/nn"
)

// Fig1 reproduces the motivation figure: average power of flash operations
// compared to the ARM Cortex-M0+ executing ALU instructions.
func Fig1(Config) (*Table, error) {
	spec := flash.DefaultSpec()
	cpu := energy.CortexM0Plus()
	t := &Table{
		ID:      "fig1",
		Title:   "power of flash operations vs ARM Cortex-M0+ [Fig. 1]",
		Columns: []string{"operation", "power", "vs M0+"},
	}
	rows := []struct {
		name  string
		power energy.Power
	}{
		{"M0+ ALU", cpu.Power},
		{"flash read", spec.ReadPower()},
		{"flash program", spec.ProgramPower()},
		{"flash erase", spec.ErasePower()},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.power.String(), fmt.Sprintf("%.2f×", float64(r.power)/float64(cpu.Power)))
	}
	t.Notes = append(t.Notes, "paper: erase draws 8.4× the M0+'s power (§II)")
	return t, nil
}

// TableI prints the flash datasheet model (Table I of the paper).
func TableI(Config) (*Table, error) {
	spec := flash.DefaultSpec()
	t := &Table{
		ID:      "table1",
		Title:   "flash operation latency and energy [Table I]",
		Columns: []string{"operation", "latency", "energy"},
	}
	t.AddRow("read (byte)", spec.ReadLatency.String(), spec.ReadEnergy.String())
	t.AddRow("program (byte)", spec.ProgramLatency.String(), spec.ProgramEnergy.String())
	t.AddRow("erase (page)", spec.EraseLatency.String(), spec.EraseEnergy.String())
	t.Notes = append(t.Notes,
		"latency ratios: erase/program = 340×; energy: erase/program = 360× (paper Table I, §II)")
	return t, nil
}

// TableII prints the derived n = 2 truth table; the unit tests assert it
// equals the paper's Table II row for row.
func TableII(Config) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "n-bit approximation truth table, n = 2 [Table II]",
		Columns: []string{"exact[i]", "exact[i-1]", "previous[i]", "previous[i-1]", "approx[i]"},
	}
	for _, r := range approx.PaperTableII() {
		t.AddRow(r.ExactI, r.ExactI1, r.PrevI, r.PrevI1, r.ApproxI)
	}
	t.Notes = append(t.Notes, "derived by the minimax rule of §III-A3, not hardcoded")
	return t, nil
}

// Fig4 replays the paper's worked 1-bit example.
func Fig4(Config) (*Table, error) {
	return workedExample("fig4", "1-bit approximation walkthrough [Fig. 4]", approx.OneBit{})
}

// Fig5 replays the paper's worked 2-bit example.
func Fig5(Config) (*Table, error) {
	return workedExample("fig5", "2-bit approximation walkthrough [Fig. 5]", approx.MustNBit(2))
}

func workedExample(id, title string, enc approx.Encoder) (*Table, error) {
	const prev, exact = 0b0101, 0b0011
	got := enc.Approximate(prev, exact, bits.W8)
	opt := approx.Optimal{}.Approximate(prev, exact, bits.W8)
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"quantity", "binary", "decimal"},
	}
	t.AddRow("previous", fmt.Sprintf("%04b", prev), fmt.Sprintf("%d", prev))
	t.AddRow("exact", fmt.Sprintf("%04b", exact), fmt.Sprintf("%d", exact))
	t.AddRow(enc.Name()+" approx", fmt.Sprintf("%04b", got), fmt.Sprintf("%d", got))
	t.AddRow("absolute error", "", fmt.Sprintf("%d", bits.AbsDiff(exact, got)))
	t.AddRow("optimal (baseline alg.)", fmt.Sprintf("%04b", opt), fmt.Sprintf("%d", opt))
	return t, nil
}

// TableIII prints the evaluated ML model inventory.
func TableIII(Config) (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "ML models evaluated [Table III]",
		Columns: []string{"model", "kind", "application", "params", "paper params", "size (kB)"},
	}
	for _, name := range nn.ModelNames() {
		m := nn.BuildModel(name)
		t.AddRow(m.Name, m.Kind, m.Application,
			fmt.Sprintf("%d", m.Net.NumParams()),
			fmt.Sprintf("%d", m.PaperParams),
			f2(m.Net.SizeKB()))
	}
	t.Notes = append(t.Notes, "mnist_mlp and ecg_mlp match the paper exactly; the CNNs are within 1%")
	return t, nil
}

// TableIV reports the synthesized hardware overhead.
func TableIV(Config) (*Table, error) {
	rows, err := hw.TableIV()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table4",
		Title:   "hardware overhead at 33 MHz in 65 nm [Table IV]",
		Columns: []string{"N-bit config", "gates", "area (µm²)", "% of M0+ SoC", "power @33 MHz", "est. Fmax"},
	}
	for _, r := range rows {
		t.AddRow(r.Config, fmt.Sprintf("%d", r.Gates), fmt.Sprintf("%.0f", r.AreaUm2),
			fmt.Sprintf("%.3f%%", 100*r.SoCShare), r.Power.String(),
			fmt.Sprintf("%.0f MHz", r.FmaxMHz()))
	}
	t.Notes = append(t.Notes,
		"paper: configurable 3919 µm² (0.104%), 74.05 µW; hardcoded n=2 3213 µm², 69.2 µW",
		"structural synthesis + constant folding; see internal/hw for the gate-level model.",
		"Fmax assumes an unoptimized ripple critical path; retiming/lookahead restructuring",
		"(what DC does to reach the paper's 1 GHz) is not modelled — 33 MHz has ≥4× slack either way")
	return t, nil
}
