package bench

import (
	"fmt"
	"time"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/video"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// AblationOptimality quantifies the error gap between the scalable n-bit
// algorithms and the exact (exponential-cost) optimal encoder — the design
// tradeoff of §III-A.
func AblationOptimality(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ablation-optimality",
		Title: "mean |error| of each encoder vs the optimal baseline",
		Columns: []string{"encoder", "uniform pairs", "correlated pairs (Δ≈8)",
			"uniform vs optimal"},
	}
	encoders := []approx.Encoder{
		approx.OneBit{}, approx.MustNBit(2), approx.MustNBit(4),
		approx.MustNBit(8), approx.Optimal{},
	}
	trials := 50000
	if cfg.Quick {
		trials = 8000
	}
	rng := xrand.New(2024)
	type pair struct{ p, e uint32 }
	uniform := make([]pair, trials)
	correlated := make([]pair, trials)
	for i := 0; i < trials; i++ {
		uniform[i] = pair{rng.Uint32() & 0xFF, rng.Uint32() & 0xFF}
		p := rng.Uint32() & 0xFF
		d := int32(p) + int32(rng.Intn(17)) - 8
		if d < 0 {
			d = 0
		}
		if d > 255 {
			d = 255
		}
		correlated[i] = pair{p, uint32(d)}
	}
	meanErr := func(enc approx.Encoder, pairs []pair) float64 {
		var sum float64
		for _, pr := range pairs {
			sum += float64(bits.AbsDiff(pr.e, enc.Approximate(pr.p, pr.e, bits.W8)))
		}
		return sum / float64(len(pairs))
	}
	optU := meanErr(approx.Optimal{}, uniform)
	for _, enc := range encoders {
		u := meanErr(enc, uniform)
		c := meanErr(enc, correlated)
		t.AddRow(enc.Name(), f2(u), f2(c), fmt.Sprintf("%.2f×", u/optU))
	}
	t.Notes = append(t.Notes,
		"the paper picks n=2: near-optimal error at O(n) cost instead of O(2^m) (§III-A3)")
	return t, nil
}

// ablationSuite is a small, fast video subset spanning motion levels.
func ablationSuite(cfg Config) []*video.Video {
	ids := []int{2, 6, 10, 14}
	if cfg.Quick {
		ids = []int{2, 14}
	}
	out := make([]*video.Video, 0, len(ids))
	for _, id := range ids {
		v := *video.ByID(id)
		v.Frames = 36
		out = append(out, &v)
	}
	return out
}

// videoAggregate runs the subset under one configuration and aggregates.
func videoAggregate(vs []*video.Video, mk func(*video.Video) video.CaptureConfig) (red, psnr float64, err error) {
	var reds, psnrs []float64
	for _, v := range vs {
		base, err := video.Capture(v, video.CaptureConfig{EncoderN: 0})
		if err != nil {
			return 0, 0, err
		}
		fb, err := video.Capture(v, mk(v))
		if err != nil {
			return 0, 0, err
		}
		reds = append(reds, video.EnergyReduction(base, fb))
		psnrs = append(psnrs, fb.MeanPSNR)
	}
	return mean(reds), mean(psnrs), nil
}

// AblationErrorMetric compares MAE gating (the paper's choice, cheap in
// hardware) with MSE gating at the matched operating point (MSE = MAE²).
func AblationErrorMetric(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablation-metric",
		Title:   "MAE vs MSE page gating on video",
		Columns: []string{"metric", "threshold", "mean energy reduction", "mean PSNR (dB)"},
	}
	vs := ablationSuite(cfg)
	for _, m := range []struct {
		metric core.ErrorMetric
		thr    float64
	}{
		{core.MetricMAE, 2},
		{core.MetricMSE, 4}, // RMS 2 ⇒ matched scale
	} {
		m := m
		red, psnr, err := videoAggregate(vs, func(*video.Video) video.CaptureConfig {
			return video.CaptureConfig{EncoderN: 2, Threshold: m.thr, Metric: m.metric}
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(m.metric.String(), fmt.Sprintf("%g", m.thr), pct(red), f1(psnr))
	}
	t.Notes = append(t.Notes,
		"the paper uses MAE because it needs no multiplier in the Fig. 9 datapath (§III-A4);",
		"comparable quality/energy here shows the cheap metric gives nothing up")
	return t, nil
}

// AblationFallback compares the paper's per-page MAE fallback with a
// stricter per-value fallback.
func AblationFallback(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablation-fallback",
		Title:   "per-page vs per-value precision fallback on video",
		Columns: []string{"fallback", "mean energy reduction", "mean PSNR (dB)"},
	}
	vs := ablationSuite(cfg)
	for _, p := range []core.FallbackPolicy{core.FallbackPerPage, core.FallbackPerValue} {
		p := p
		red, psnr, err := videoAggregate(vs, func(*video.Video) video.CaptureConfig {
			return video.CaptureConfig{EncoderN: 2, Threshold: 2, Fallback: p}
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(p.String(), pct(red), f1(psnr))
	}
	t.Notes = append(t.Notes,
		"per-value gating erases whenever any single value exceeds the threshold:",
		"higher quality floor, fewer erase-free commits — the paper's page-level MAE trades a bounded",
		"mean error for substantially more savings")
	return t, nil
}

// AblationSkipProgram measures the contribution of eliding program pulses
// for bytes whose stored value already matches.
func AblationSkipProgram(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablation-skip",
		Title:   "skip-unchanged-byte programming on video (2-bit, threshold 2)",
		Columns: []string{"unchanged bytes", "mean energy reduction", "mean PSNR (dB)"},
	}
	vs := ablationSuite(cfg)
	for _, p := range []struct {
		name       string
		programAll bool
	}{{"skipped (buffered parts)", false}, {"always programmed", true}} {
		p := p
		red, psnr, err := videoAggregate(vs, func(*video.Video) video.CaptureConfig {
			return video.CaptureConfig{EncoderN: 2, Threshold: 2, ProgramAll: p.programAll}
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name, pct(red), f1(psnr))
	}
	t.Notes = append(t.Notes,
		"baseline runs use the same setting, so the delta isolates the skip optimization itself")
	return t, nil
}

// AblationPageSize sweeps the erase granularity. The paper targets parts
// with 256 or 512 B pages (§II); the page size sets both the erase cost a
// fallback pays and how much a single bad value dilutes into the page MAE.
func AblationPageSize(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ablation-pagesize",
		Title: "page-size sensitivity on video (2-bit, threshold 2)",
		Columns: []string{"page size", "mean energy reduction", "mean PSNR (dB)",
			"baseline erase share"},
	}
	vs := ablationSuite(cfg)
	for _, ps := range []int{128, 256, 512} {
		spec := flash.DefaultSpec()
		// Scale the erase cost with the page: bigger pages erase more
		// cells per operation (roughly linear in cells).
		spec.EraseEnergy = spec.EraseEnergy * energyScale(ps) / energyScale(spec.PageSize)
		spec.EraseLatency = time.Duration(float64(spec.EraseLatency) *
			float64(ps) / float64(spec.PageSize))
		spec.PageSize = ps
		spec.NumPages = 1 << 20 / ps // keep 1 MiB capacity

		var reds, psnrs, shares []float64
		for _, v := range vs {
			base, err := video.Capture(v, video.CaptureConfig{EncoderN: 0, Spec: &spec})
			if err != nil {
				return nil, err
			}
			fb, err := video.Capture(v, video.CaptureConfig{EncoderN: 2, Threshold: 2, Spec: &spec})
			if err != nil {
				return nil, err
			}
			reds = append(reds, video.EnergyReduction(base, fb))
			psnrs = append(psnrs, fb.MeanPSNR)
			eraseE := float64(base.Flash.Erases) * float64(spec.EraseEnergy)
			shares = append(shares, eraseE/float64(base.Flash.Energy))
		}
		t.AddRow(fmt.Sprintf("%d B", ps), pct(mean(reds)), f1(mean(psnrs)), pct(mean(shares)))
	}
	t.Notes = append(t.Notes,
		"erase energy/latency scaled linearly with page size; total capacity held at 1 MiB.",
		"Larger pages raise the stakes per fallback but also average error over more values")
	return t, nil
}

func energyScale(ps int) energy.Energy { return energy.Energy(ps) }

// AblationMLC compares the SLC n-bit encoders with the MLC n-cell variant
// of §VI on the same data.
func AblationMLC(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablation-mlc",
		Title:   "SLC n-bit vs MLC n-cell approximation error",
		Columns: []string{"encoder", "cell type", "mean |error| (uniform)", "mean |error| (correlated)"},
	}
	trials := 50000
	if cfg.Quick {
		trials = 8000
	}
	rng := xrand.New(77)
	type pair struct{ p, e uint32 }
	uniform := make([]pair, trials)
	correlated := make([]pair, trials)
	for i := 0; i < trials; i++ {
		uniform[i] = pair{rng.Uint32() & 0xFF, rng.Uint32() & 0xFF}
		p := rng.Uint32() & 0xFF
		d := int32(p) + int32(rng.Intn(17)) - 8
		if d < 0 {
			d = 0
		}
		if d > 255 {
			d = 255
		}
		correlated[i] = pair{p, uint32(d)}
	}
	meanErr := func(enc approx.Encoder, pairs []pair) float64 {
		var sum float64
		for _, pr := range pairs {
			sum += float64(bits.AbsDiff(pr.e, enc.Approximate(pr.p, pr.e, bits.W8)))
		}
		return sum / float64(len(pairs))
	}
	rows := []struct {
		enc  approx.Encoder
		cell string
	}{
		{approx.MustNBit(1), "SLC"},
		{approx.MustNBit(2), "SLC"},
		{approx.MustNCell(1), "MLC"},
		{approx.MustNCell(2), "MLC"},
	}
	for _, r := range rows {
		t.AddRow(r.enc.Name(), r.cell, f2(meanErr(r.enc, uniform)), f2(meanErr(r.enc, correlated)))
	}
	// End-to-end: the same drifting-record workload through an SLC and an
	// MLC device (§VI made runnable by the MLC cell mode in internal/flash).
	endToEnd := func(mode flash.CellMode, enc approx.Encoder) (uint64, error) {
		spec := flash.DefaultSpec()
		spec.NumPages = 16
		spec.Cell = mode
		dev := core.MustNewDevice(spec, core.WithEncoder(enc))
		if err := dev.SetApproxRegion(0, spec.PageSize); err != nil {
			return 0, err
		}
		dev.SetThreshold(2)
		rec := make([]byte, 64)
		drift := xrand.New(31)
		for i := range rec {
			rec[i] = drift.Byte()
		}
		rounds := trials / 50
		for r := 0; r < rounds; r++ {
			for i := range rec {
				rec[i] = byte(int(rec[i]) + drift.Intn(5) - 2)
			}
			if err := dev.Write(0, rec); err != nil {
				return 0, err
			}
		}
		return dev.Flash().Stats().Erases, nil
	}
	slcErases, err := endToEnd(flash.SLC, approx.MustNBit(2))
	if err != nil {
		return nil, err
	}
	mlcErases, err := endToEnd(flash.MLC, approx.MustNCell(2))
	if err != nil {
		return nil, err
	}
	t.AddRow("end-to-end erases", "SLC 2-bit", fmt.Sprintf("%d", slcErases), "")
	t.AddRow("end-to-end erases", "MLC 2-cell", fmt.Sprintf("%d", mlcErases), "")
	t.Notes = append(t.Notes,
		"MLC cells can move to any lower level without an erase, so the same data approximates",
		"with different error structure (§VI); the n-cell algorithm generalizes the n-bit one.",
		"End-to-end rows run the drifting-record workload through SLC and MLC devices at threshold 2")
	return t, nil
}
