//go:build race

package bench

// raceEnabled reports that this test binary runs under the race detector,
// where instrumentation overhead makes kernel-vs-scalar timing gates
// meaningless.
const raceEnabled = true
