package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/isc"
	"github.com/flipbit-sim/flipbit/internal/kvs"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// The inflash experiment measures the in-storage compute story end to end,
// in two sections.
//
// The scan section drives a populated KV store through predicate scans at
// three selectivities and compares the pushdown path (bitmap senses inside
// the array, then only candidate records fetched) against the
// read-everything-to-host baseline over the same records, byte for byte.
// ~5% of the keys are updated into new buckets first, so the index carries
// stale bits and the numbers include the false-positive re-reads they cost.
// The 50% row is phrased as a negation to route it through the positive
// rewrite that keeps stale supersets sound.
//
// The approx section compares two ways of keeping a searchable array of
// sensor readings on flash. The baseline stores exact 16-byte records and
// pays a read-modify-erase-program cycle for every in-place refresh; a
// search reads every record. The FlipBit store keeps readings bit-planar,
// refreshes them erase-free by programming the nearest reachable value
// within an error budget, and searches in-flash with prefix senses widened
// by the observed error bound — so no intended reading is ever missed.

// InflashScanRow is one selectivity's pushdown-vs-host comparison.
type InflashScanRow struct {
	Predicate      string  `json:"predicate"`
	SelectivityPct float64 `json:"selectivity_pct"`
	Matches        int     `json:"matches"`
	Candidates     uint64  `json:"candidates"`
	FalsePositives uint64  `json:"false_positives"`
	Senses         uint64  `json:"senses"`
	PagesSensed    uint64  `json:"pages_sensed"`
	ScanEnergyUJ   float64 `json:"scan_energy_uj"`
	HostEnergyUJ   float64 `json:"host_energy_uj"`
	EnergyX        float64 `json:"energy_x"` // host / pushdown, device energy
	ScanDeviceMs   float64 `json:"scan_device_ms"`
	HostDeviceMs   float64 `json:"host_device_ms"`
	TimeX          float64 `json:"time_x"` // host / pushdown, device busy time
	Equal          bool    `json:"equal"`  // pushdown results == host results
}

// InflashApproxRow is one tolerance's approximate-search comparison.
type InflashApproxRow struct {
	Tol           int     `json:"tol"`
	Queries       int     `json:"queries"`
	ExactMatches  int     `json:"exact_matches"` // readings truly within tol
	Candidates    int     `json:"candidates"`    // slots the widened senses returned
	Missed        int     `json:"missed"`        // intended readings lost (must be 0)
	MaxErr        int     `json:"max_err"`       // worst |intended - stored| accepted
	ErrBudget     int     `json:"err_budget"`
	Updates       int     `json:"updates"`
	Rejected      int     `json:"rejected"` // refreshes outside the budget, skipped
	BaseUpdateUJ  float64 `json:"base_update_uj"`
	FlipUpdateUJ  float64 `json:"flip_update_uj"`
	UpdateEnergyX float64 `json:"update_energy_x"`
	BaseQueryUJ   float64 `json:"base_query_uj"`
	FlipQueryUJ   float64 `json:"flip_query_uj"`
	QueryEnergyX  float64 `json:"query_energy_x"`
	BaseErases    uint64  `json:"base_erases"`
	FlipErases    uint64  `json:"flip_erases"`
}

// InflashReport is the machine-readable result written to
// BENCH_inflash.json.
type InflashReport struct {
	Seed         uint64             `json:"seed"`
	PageSize     int                `json:"page_size"`
	Banks        int                `json:"banks"`
	Keys         int                `json:"keys"`
	Buckets      int                `json:"buckets"`
	ValueSize    int                `json:"value_size"`
	StaleUpdates int                `json:"stale_updates"`
	Samples      int                `json:"samples"`
	SampleWidth  int                `json:"sample_width"`
	Rows         []InflashScanRow   `json:"rows"`
	Approx       []InflashApproxRow `json:"approx"`
}

const (
	inflashSeed      = 0x1F1A5
	inflashPageSize  = 256
	inflashBanks     = 4
	inflashBuckets   = 100 // 1 bucket = 1% of the keyspace
	inflashValueSize = 24
	inflashWidth     = 10 // sensor reading bits
	inflashRecSize   = 16 // baseline bytes per reading record
	inflashBudget    = 12 // SetApprox error budget
)

func uj(e energy.Energy) float64    { return float64(e / energy.Microjoule) }
func devMs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
func ratio(hi, lo float64) float64 {
	if lo <= 0 {
		return 0
	}
	return hi / lo
}

// inflashIndexSpec buckets records by their first value byte.
func inflashIndexSpec(maxKeys int) kvs.IndexSpec {
	return kvs.IndexSpec{
		MaxKeys: maxKeys,
		Fields: []kvs.IndexField{
			{Name: "sel", Buckets: inflashBuckets, Extract: func(_ string, v []byte) int {
				if len(v) < 1 || int(v[0]) >= inflashBuckets {
					return -1
				}
				return int(v[0])
			}},
		},
	}
}

// runInflashScan populates the store, churns ~5% of the keys into new
// buckets (stale index bits), and measures each predicate both ways.
func runInflashScan(keys int) ([]InflashScanRow, int, error) {
	spec := flash.DefaultSpec()
	spec.PageSize = inflashPageSize
	spec.NumPages = 1024
	spec.Banks = inflashBanks
	dev := core.MustNewDevice(spec)
	defer dev.Close()

	s, err := kvs.Open(dev, kvs.WithScanIndex(inflashIndexSpec(keys)))
	if err != nil {
		return nil, 0, err
	}
	if !s.ScanIndexed() {
		return nil, 0, fmt.Errorf("scan index did not come up")
	}

	rng := xrand.New(inflashSeed)
	val := make([]byte, inflashValueSize)
	put := func(i, bucket int) error {
		val[0] = byte(bucket)
		for j := 1; j < len(val); j++ {
			val[j] = rng.Byte()
		}
		return s.Put(fmt.Sprintf("dev%04d", i), val)
	}
	for i := 0; i < keys; i++ {
		if err := put(i, i%inflashBuckets); err != nil {
			return nil, 0, fmt.Errorf("populate key %d: %w", i, err)
		}
	}
	stale := keys / 20
	for u := 0; u < stale; u++ {
		if err := put(rng.Intn(keys), rng.Intn(inflashBuckets)); err != nil {
			return nil, 0, fmt.Errorf("stale update %d: %w", u, err)
		}
	}

	span := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	upper := make([]int, inflashBuckets/2)
	for i := range upper {
		upper[i] = inflashBuckets/2 + i
	}
	preds := []struct {
		label string
		p     isc.Pred
		pct   float64
	}{
		{"sel=0", isc.In("sel", span(1)...), 1},
		{"sel in 0..9", isc.In("sel", span(10)...), 10},
		// Phrased negatively on purpose: exercises the positive rewrite
		// that keeps stale-bit supersets sound under complement.
		{"not(sel in 50..99)", isc.Not(isc.In("sel", upper...)), 50},
	}

	var rows []InflashScanRow
	for _, pc := range preds {
		kvBefore := s.Stats()
		fBefore := dev.Flash().Stats()
		got, err := s.Scan(pc.p)
		if err != nil {
			return nil, 0, fmt.Errorf("scan %s: %w", pc.p, err)
		}
		scanD := dev.Flash().Stats().Sub(fBefore)
		kvD := s.Stats()

		fBefore = dev.Flash().Stats()
		want, err := s.ScanHost(pc.p)
		if err != nil {
			return nil, 0, fmt.Errorf("host scan %s: %w", pc.p, err)
		}
		hostD := dev.Flash().Stats().Sub(fBefore)

		equal := len(got) == len(want)
		for i := 0; equal && i < len(got); i++ {
			equal = got[i].Key == want[i].Key && bytes.Equal(got[i].Val, want[i].Val)
		}
		rows = append(rows, InflashScanRow{
			Predicate:      pc.label,
			SelectivityPct: pc.pct,
			Matches:        len(got),
			Candidates:     kvD.ScanCandidates - kvBefore.ScanCandidates,
			FalsePositives: kvD.ScanFalsePositives - kvBefore.ScanFalsePositives,
			Senses:         scanD.Senses,
			PagesSensed:    scanD.PagesSensed,
			ScanEnergyUJ:   uj(scanD.Energy),
			HostEnergyUJ:   uj(hostD.Energy),
			EnergyX:        ratio(float64(hostD.Energy), float64(scanD.Energy)),
			ScanDeviceMs:   devMs(scanD.Busy),
			HostDeviceMs:   devMs(hostD.Busy),
			TimeX:          ratio(float64(hostD.Busy), float64(scanD.Busy)),
			Equal:          equal,
		})
	}
	return rows, stale, nil
}

// runInflashApprox builds the two reading stores, applies the same refresh
// stream to both, and runs proximity queries each way.
func runInflashApprox(samples, tol, queries int) (*InflashApproxRow, error) {
	full := 1<<inflashWidth - 1

	// FlipBit store: bit-planar readings, erase-free refreshes, sense search.
	planeCfg := isc.PlaneConfig{
		PageSize:      inflashPageSize,
		Banks:         inflashBanks,
		MaxSensePages: flash.DefaultMaxSensePages,
		FirstPage:     0,
		Slots:         samples,
		Width:         inflashWidth,
	}
	flipSpec := flash.DefaultSpec()
	flipSpec.PageSize = inflashPageSize
	flipSpec.Banks = inflashBanks
	flipSpec.NumPages = planeCfg.Pages()
	flipDev, err := flash.NewDevice(flipSpec)
	if err != nil {
		return nil, err
	}
	ps, err := isc.NewPlaneStore(flipDev, planeCfg)
	if err != nil {
		return nil, err
	}
	if err := ps.Reset(); err != nil {
		return nil, err
	}

	// Baseline store: one exact 16-byte record per reading; refreshes are
	// read-modify-erase-program cycles on the record's page.
	perPage := inflashPageSize / inflashRecSize
	recPages := (samples + perPage - 1) / perPage
	baseSpec := flash.DefaultSpec()
	baseSpec.PageSize = inflashPageSize
	baseSpec.Banks = inflashBanks
	baseSpec.NumPages = (recPages + inflashBanks - 1) / inflashBanks * inflashBanks
	baseDev, err := flash.NewDevice(baseSpec)
	if err != nil {
		return nil, err
	}
	record := func(buf []byte, slot, v int) {
		off := (slot % perPage) * inflashRecSize
		for i := 0; i < inflashRecSize; i++ {
			buf[off+i] = byte(slot >> (8 * (i % 2))) // id filler
		}
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
	}

	rng := xrand.New(inflashSeed + 0xA99)
	intended := make([]int, samples)
	page := make([]byte, inflashPageSize)
	for p := 0; p < recPages; p++ {
		for i := range page {
			page[i] = 0xFF
		}
		for slot := p * perPage; slot < (p+1)*perPage && slot < samples; slot++ {
			v := rng.Intn(full + 1)
			intended[slot] = v
			if _, err := ps.SetApprox(slot, v, inflashBudget); err != nil {
				return nil, fmt.Errorf("populate slot %d: %w", slot, err)
			}
			record(page, slot, v)
		}
		if err := baseDev.ProgramPage(p, page); err != nil {
			return nil, err
		}
	}

	// Refresh stream: the FlipBit store accepts what its budget reaches and
	// both stores apply exactly the accepted refreshes.
	updates := samples / 4
	rejected := 0
	flipBefore := flipDev.Stats()
	baseBefore := baseDev.Stats()
	for u := 0; u < updates; u++ {
		slot := rng.Intn(samples)
		v := rng.Intn(full + 1)
		if _, err := ps.SetApprox(slot, v, inflashBudget); err != nil {
			if errors.Is(err, isc.ErrErrorBudget) {
				rejected++
				continue
			}
			return nil, fmt.Errorf("refresh %d: %w", u, err)
		}
		intended[slot] = v
		p := slot / perPage
		if err := baseDev.ReadPage(p, page); err != nil {
			return nil, err
		}
		record(page, slot, v)
		if err := baseDev.EraseProgramPage(p, page); err != nil {
			return nil, err
		}
	}
	flipUpd := flipDev.Stats().Sub(flipBefore)
	baseUpd := baseDev.Stats().Sub(baseBefore)

	// Proximity queries: in-flash widened senses vs read-every-record.
	dst := make([]byte, ps.BitmapBytes())
	all := make([]byte, samples*inflashRecSize)
	exact, cands, missed := 0, 0, 0
	flipBefore = flipDev.Stats()
	baseBefore = baseDev.Stats()
	for q := 0; q < queries; q++ {
		v := rng.Intn(full + 1)
		if err := ps.MatchNear(v, tol, dst); err != nil {
			return nil, fmt.Errorf("query %d: %w", q, err)
		}
		if err := baseDev.Read(0, all); err != nil {
			return nil, err
		}
		for slot := 0; slot < samples; slot++ {
			hit := dst[slot/8]&(1<<(slot%8)) != 0
			if hit {
				cands++
			}
			d := intended[slot] - v
			if d < 0 {
				d = -d
			}
			if d <= tol {
				exact++
				if !hit {
					missed++
				}
			}
		}
	}
	flipQ := flipDev.Stats().Sub(flipBefore)
	baseQ := baseDev.Stats().Sub(baseBefore)

	return &InflashApproxRow{
		Tol:           tol,
		Queries:       queries,
		ExactMatches:  exact,
		Candidates:    cands,
		Missed:        missed,
		MaxErr:        ps.MaxObservedError(),
		ErrBudget:     inflashBudget,
		Updates:       updates,
		Rejected:      rejected,
		BaseUpdateUJ:  uj(baseUpd.Energy),
		FlipUpdateUJ:  uj(flipUpd.Energy),
		UpdateEnergyX: ratio(float64(baseUpd.Energy), float64(flipUpd.Energy)),
		BaseQueryUJ:   uj(baseQ.Energy),
		FlipQueryUJ:   uj(flipQ.Energy),
		QueryEnergyX:  ratio(float64(baseQ.Energy), float64(flipQ.Energy)),
		BaseErases:    baseUpd.Erases,
		FlipErases:    flipUpd.Erases + flipQ.Erases,
	}, nil
}

// RunInflash executes both sections.
func RunInflash(cfg Config) (*InflashReport, error) {
	keys, samples, queries := 2000, 1024, 32
	if cfg.Quick {
		keys, samples, queries = 400, 256, 8
	}
	rows, stale, err := runInflashScan(keys)
	if err != nil {
		return nil, fmt.Errorf("inflash scan: %w", err)
	}
	rep := &InflashReport{
		Seed:         inflashSeed,
		PageSize:     inflashPageSize,
		Banks:        inflashBanks,
		Keys:         keys,
		Buckets:      inflashBuckets,
		ValueSize:    inflashValueSize,
		StaleUpdates: stale,
		Samples:      samples,
		SampleWidth:  inflashWidth,
		Rows:         rows,
	}
	for _, tol := range []int{4, 16} {
		row, err := runInflashApprox(samples, tol, queries)
		if err != nil {
			return nil, fmt.Errorf("inflash approx tol %d: %w", tol, err)
		}
		rep.Approx = append(rep.Approx, *row)
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *InflashReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExpInflash is the registry wrapper: the report as a rendered table.
func ExpInflash(cfg Config) (*Table, error) {
	rep, err := RunInflash(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "inflash",
		Title:   "in-flash predicate pushdown vs read-everything host scans",
		Columns: []string{"predicate", "sel%", "matches", "cands", "stale FPs", "senses", "scan µJ", "host µJ", "energy×", "time×", "equal"},
	}
	for _, r := range rep.Rows {
		t.AddRow(
			r.Predicate,
			fmt.Sprintf("%.0f", r.SelectivityPct),
			fmt.Sprintf("%d", r.Matches),
			fmt.Sprintf("%d", r.Candidates),
			fmt.Sprintf("%d", r.FalsePositives),
			fmt.Sprintf("%d", r.Senses),
			fmt.Sprintf("%.2f", r.ScanEnergyUJ),
			fmt.Sprintf("%.2f", r.HostEnergyUJ),
			fmt.Sprintf("%.1f×", r.EnergyX),
			fmt.Sprintf("%.1f×", r.TimeX),
			fmt.Sprintf("%v", r.Equal))
	}
	for _, a := range rep.Approx {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"approx tol=%d: %d queries, %d/%d intended readings found (missed %d), max err %d/%d; refresh energy %.0f× cheaper erase-free, search %.1f× cheaper in-flash",
			a.Tol, a.Queries, a.ExactMatches-a.Missed, a.ExactMatches, a.Missed,
			a.MaxErr, a.ErrBudget, a.UpdateEnergyX, a.QueryEnergyX))
	}
	t.Notes = append(t.Notes,
		"pushdown scans evaluate the predicate with multi-page senses over inverted bitmaps and fetch only candidates; the host baseline reads every record",
		"5% of keys were re-bucketed before measuring, so candidates include stale-bit false positives the exact re-check filters",
		"the 50% row is a negation: it is planned through the positive rewrite (complement-free), which keeps stale supersets sound")
	return t, nil
}
