package bench

import (
	"runtime"
	"sync"
)

// mapConcurrent applies fn to every item on up to runtime.NumCPU() worker
// goroutines and returns the results in input order. The first error wins;
// remaining items are skipped once an error is recorded. Experiments use it
// to fan independent simulations (one device per call) across cores while
// keeping tables deterministic.
func mapConcurrent[T, R any](items []T, fn func(T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	workers := runtime.NumCPU()
	if workers > len(items) {
		workers = len(items)
	}
	var (
		mu       sync.Mutex
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= len(items) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				r, err := fn(items[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}
