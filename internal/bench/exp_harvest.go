package bench

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/harvest"
)

// ExpHarvest quantifies §VI's energy-harvesting claim: with the checkpoint
// reserve policy fixed, cheaper approximate checkpoints leave surplus in
// the storage capacitor, shortening recharges and increasing forward
// progress per harvested joule.
func ExpHarvest(cfg Config) (*Table, error) {
	periods := 400
	if cfg.Quick {
		periods = 120
	}

	run := func(threshold float64) (harvest.Report, error) {
		spec := smallSpec(32)
		dev := core.MustNewDevice(spec)
		if threshold > 0 {
			if err := dev.SetApproxRegion(0, spec.PageSize*spec.NumPages); err != nil {
				return harvest.Report{}, err
			}
			if err := dev.SetWidth(bits.W8); err != nil {
				return harvest.Report{}, err
			}
			dev.SetThreshold(threshold)
		}
		cap, err := harvest.NewCapacitor(0.001, 3.3, 1.8) // ~3.8 mJ usable
		if err != nil {
			return harvest.Report{}, err
		}
		return harvest.Run(dev, harvest.Config{
			Cap:          cap,
			HarvestPower: 2 * energy.Milliwatt, // indoor-solar scale
			CPU:          energy.CortexM0Plus(),
			WorkCycles:   50_000,
			StateBytes:   1024,
			Seed:         2026,
		}, periods)
	}

	t := &Table{
		ID:    "exp-harvest",
		Title: "energy-harvesting checkpoints: forward progress per harvested joule (§VI)",
		Columns: []string{"checkpoint policy", "work/mJ harvested", "harvest time",
			"flash energy", "failed periods", "checkpoint MAE"},
	}
	var exactRate float64
	for _, p := range []struct {
		name string
		thr  float64
	}{
		{"exact", 0},
		{"FlipBit thr 2", 2},
		{"FlipBit thr 4", 4},
	} {
		rep, err := run(p.thr)
		if err != nil {
			return nil, err
		}
		if p.thr == 0 {
			exactRate = rep.WorkPerMillijoule()
		}
		gain := ""
		if p.thr > 0 && exactRate > 0 {
			gain = fmt.Sprintf(" (%.2f×)", rep.WorkPerMillijoule()/exactRate)
		}
		t.AddRow(p.name,
			fmt.Sprintf("%.1f%s", rep.WorkPerMillijoule(), gain),
			rep.HarvestTime.Round(1e6).String(),
			rep.FlashEnergy.String(),
			fmt.Sprintf("%d", rep.FailedPeriods),
			f2(rep.CheckpointMAE))
	}
	t.Notes = append(t.Notes,
		"1 mF storage cap (≈3.8 mJ usable), 2 mW harvest, 1 KiB state, worst-case",
		"checkpoint reserve; surplus energy carries across periods (§VI 'Energy Harvesting')")
	return t, nil
}
