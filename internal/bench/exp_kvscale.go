package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/kvs"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// The kvscale experiment drives the store at production scale — 10⁴–10⁵
// keys under hot/cold skewed traffic — with proactive compaction and index
// checkpointing armed, and measures the three scale properties the store
// claims: sustained write throughput with GC running inline, bounded
// live-vs-physical space amplification, and O(tail) mount versus the full
// scan. Device-time numbers (simulated busy time, from the datasheet
// latency model) are deterministic; host times are machine-dependent and
// informational.

// KVScaleRow is one key-count configuration's outcome.
type KVScaleRow struct {
	Keys      int `json:"keys"`
	DataPages int `json:"data_pages"`
	SlotPages int `json:"slot_pages"` // per checkpoint slot

	Ops       int     `json:"ops"` // populate + churn + tail appends
	OpsPerSec float64 `json:"ops_per_sec"`

	Compactions uint64  `json:"compactions"`
	Checkpoints uint64  `json:"checkpoints"`
	LiveBytes   int     `json:"live_bytes"`
	UsedBytes   int     `json:"used_bytes"`
	SpaceAmp    float64 `json:"space_amp"`

	// Mount cost, full scan vs checkpointed, over the same final image.
	ScanMountDeviceMs float64 `json:"scan_mount_device_ms"`
	CkptMountDeviceMs float64 `json:"ckpt_mount_device_ms"`
	MountSpeedup      float64 `json:"mount_speedup"` // device-time ratio
	ScanMountHostMs   float64 `json:"scan_mount_host_ms"`
	CkptMountHostMs   float64 `json:"ckpt_mount_host_ms"`
	TailPagesReplayed uint64  `json:"tail_pages_replayed"`
}

// KVScaleReport is the machine-readable result written to
// BENCH_kvscale.json.
type KVScaleReport struct {
	Seed       uint64       `json:"seed"`
	PageSize   int          `json:"page_size"`
	ValueSize  int          `json:"value_size"`
	HotKeyFrac float64      `json:"hot_key_frac"`
	HotOpFrac  float64      `json:"hot_op_frac"`
	Rows       []KVScaleRow `json:"rows"`
}

const (
	kvScaleSeed      = 0x5CA1E
	kvScalePageSize  = 4096
	kvScaleValueSize = 128
	// Hot/cold skew: 10% of the keys take 90% of the churn writes.
	kvScaleHotKeys = 0.1
	kvScaleHotOps  = 0.9
)

// kvScaleKey formats key i; the fixed width keeps record and checkpoint
// entry sizes uniform, so the geometry below is exact.
func kvScaleKey(i int) string { return fmt.Sprintf("k%06d", i) }

// runKVScaleRow builds a device sized for the key count, drives the
// workload, and measures both mount paths over the final image.
func runKVScaleRow(keys int) (*KVScaleRow, error) {
	const keyLen = 7 // "k%06d"
	recSize := 5 + keyLen + kvScaleValueSize + 4
	// Size the log at 1.6× the live set: tight enough that the churn phase
	// wraps the log and compaction must run, loose enough that steady-state
	// amplification stays under the 2.0 gate.
	dataPages := keys*recSize*8/5/kvScalePageSize + 1
	// Checkpoint blob: header + page table + one entry per key + CRC, and
	// one spare page of slack so GC-induced entry churn never overflows.
	blob := 30 + dataPages*13 + keys*(10+keyLen) + 4
	slotPages := blob/kvScalePageSize + 2

	spec := flash.DefaultSpec()
	spec.PageSize = kvScalePageSize
	spec.NumPages = dataPages + 2*slotPages
	spec.Banks = 1
	dev := core.MustNewDevice(spec)
	defer dev.Close()

	mountOpts := func(scanOnly bool) []kvs.Option {
		return []kvs.Option{
			kvs.WithCompaction(kvs.CompactionConfig{TriggerFreePages: 4, MaxGarbageRatio: 0.45}),
			kvs.WithCheckpoint(kvs.CheckpointConfig{SlotPages: slotPages, Interval: keys / 2, ScanOnly: scanOnly}),
		}
	}
	s, err := kvs.Open(dev, mountOpts(false)...)
	if err != nil {
		return nil, err
	}

	rng := xrand.New(kvScaleSeed + uint64(keys))
	val := make([]byte, kvScaleValueSize)
	put := func(i int) error {
		val[0] = rng.Byte()
		val[1] = rng.Byte()
		val[2] = byte(i)
		val[3] = byte(i >> 8)
		return s.Put(kvScaleKey(i), val)
	}

	start := time.Now()
	for i := 0; i < keys; i++ {
		if err := put(i); err != nil {
			return nil, fmt.Errorf("populate key %d: %w", i, err)
		}
	}
	churn := 2 * keys / 3
	hot := max(1, int(float64(keys)*kvScaleHotKeys))
	hotThresh := int(kvScaleHotOps * 100)
	for i := 0; i < churn; i++ {
		k := hot + rng.Intn(max(1, keys-hot))
		if rng.Intn(100) < hotThresh {
			k = rng.Intn(hot)
		}
		if err := put(k); err != nil {
			return nil, fmt.Errorf("churn op %d: %w", i, err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		return nil, fmt.Errorf("final checkpoint: %w", err)
	}
	// A realistic mount has a tail: a burst of writes after the last
	// checkpoint, replayed (not scanned) by the checkpointed mount.
	tail := min(64, max(1, keys/10))
	for i := 0; i < tail; i++ {
		if err := put(rng.Intn(keys)); err != nil {
			return nil, fmt.Errorf("tail op %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	ops := keys + churn + tail

	st := s.Stats()
	live, used := s.Usage()
	row := &KVScaleRow{
		Keys:        keys,
		DataPages:   s.DataPages(),
		SlotPages:   slotPages,
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		Compactions: st.Compactions,
		Checkpoints: st.Checkpoints,
		LiveBytes:   live,
		UsedBytes:   used,
		SpaceAmp:    s.SpaceAmplification(),
	}

	// Mount both ways over the same image. Host time takes the best of two
	// runs; device busy time is deterministic, so one delta suffices.
	mount := func(scanOnly bool) (time.Duration, time.Duration, kvs.Stats, error) {
		var host time.Duration
		var busy time.Duration
		var mst kvs.Stats
		for run := 0; run < 2; run++ {
			busyBefore := dev.Flash().Stats().Busy
			t0 := time.Now()
			m, err := kvs.Open(dev, mountOpts(scanOnly)...)
			dt := time.Since(t0)
			if err != nil {
				return 0, 0, kvs.Stats{}, err
			}
			if run == 0 || dt < host {
				host = dt
			}
			busy = dev.Flash().Stats().Busy - busyBefore
			mst = m.Stats()
		}
		return host, busy, mst, nil
	}
	scanHost, scanBusy, _, err := mount(true)
	if err != nil {
		return nil, fmt.Errorf("scan mount: %w", err)
	}
	ckptHost, ckptBusy, mst, err := mount(false)
	if err != nil {
		return nil, fmt.Errorf("checkpointed mount: %w", err)
	}
	if mst.CheckpointMounts != 1 {
		return nil, fmt.Errorf("checkpointed mount fell back to scan (stats %+v)", mst)
	}
	row.ScanMountDeviceMs = float64(scanBusy.Nanoseconds()) / 1e6
	row.CkptMountDeviceMs = float64(ckptBusy.Nanoseconds()) / 1e6
	if ckptBusy > 0 {
		row.MountSpeedup = float64(scanBusy) / float64(ckptBusy)
	}
	row.ScanMountHostMs = float64(scanHost.Nanoseconds()) / 1e6
	row.CkptMountHostMs = float64(ckptHost.Nanoseconds()) / 1e6
	row.TailPagesReplayed = mst.TailPagesReplayed
	return row, nil
}

// RunKVScale executes the experiment at every key count.
func RunKVScale(cfg Config) (*KVScaleReport, error) {
	counts := []int{30_000, 150_000}
	if cfg.Quick {
		counts = []int{1_500, 5_000}
	}
	rep := &KVScaleReport{
		Seed:       kvScaleSeed,
		PageSize:   kvScalePageSize,
		ValueSize:  kvScaleValueSize,
		HotKeyFrac: kvScaleHotKeys,
		HotOpFrac:  kvScaleHotOps,
	}
	for _, k := range counts {
		row, err := runKVScaleRow(k)
		if err != nil {
			return nil, fmt.Errorf("kvscale %d keys: %w", k, err)
		}
		rep.Rows = append(rep.Rows, *row)
	}
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *KVScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExpKVScale is the registry wrapper: the report as a rendered table.
func ExpKVScale(cfg Config) (*Table, error) {
	rep, err := RunKVScale(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "kvscale",
		Title:   "store at scale: GC under load, space amplification, O(tail) mount",
		Columns: []string{"keys", "data pages", "ops", "ops/sec", "compactions", "checkpoints", "space amp", "scan mount", "ckpt mount", "speedup", "tail pages"},
	}
	for _, r := range rep.Rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Keys),
			fmt.Sprintf("%d", r.DataPages),
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%d", r.Compactions),
			fmt.Sprintf("%d", r.Checkpoints),
			f2(r.SpaceAmp),
			fmt.Sprintf("%.1fms", r.ScanMountDeviceMs),
			fmt.Sprintf("%.1fms", r.CkptMountDeviceMs),
			fmt.Sprintf("%.1f×", r.MountSpeedup),
			fmt.Sprintf("%d", r.TailPagesReplayed))
	}
	t.Notes = append(t.Notes,
		"hot/cold skew: 10% of keys take 90% of churn writes; the log is sized at 1.6× the live set so churn forces GC",
		"mount columns are simulated device busy time (deterministic); speedup is scan/checkpointed — the O(device) vs O(tail) gap",
		"space amp is physical bytes consumed over live record bytes; the 0.45 garbage-ratio ceiling bounds it under 2.0")
	return t, nil
}
