package bench

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/detect"
	"github.com/flipbit-sim/flipbit/internal/video"
)

// Fig13 runs the end-to-end object-detection study: detections on
// FlipBit-approximated frames are scored against detections on exact frames
// (the paper's YOLOv3 protocol with IoU ≥ 0.5). Videos without detectable
// objects in the exact baseline are excluded, as the paper does.
func Fig13(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "object-detection F1 on approximated video, IoU ≥ 0.5 [Fig. 13]",
		Columns: []string{"id", "video", "precision", "recall", "F1"},
	}
	params := detect.DefaultParams()
	var f1s []float64
	for _, v := range videoSuite(cfg) {
		// Exact-frame detections act as the reference.
		refBoxes := make(map[int][]video.Box)
		refDetections := 0
		_, err := video.Capture(v, video.CaptureConfig{
			EncoderN: 0,
			OnFrame: func(ti int, _, stored video.Frame) {
				boxes := detect.Detect(stored, v.BackgroundFrame(ti), v.Width, v.Height, params)
				refBoxes[ti] = boxes
				refDetections += len(boxes)
			},
		})
		if err != nil {
			return nil, err
		}
		if refDetections == 0 {
			// No objects the detector can see (static scenes):
			// excluded, as the paper excludes videos YOLO cannot
			// handle in the baseline.
			continue
		}
		var counts detect.Counts
		_, err = video.Capture(v, video.CaptureConfig{
			EncoderN:  2,
			Threshold: fig10Threshold,
			OnFrame: func(ti int, _, stored video.Frame) {
				boxes := detect.Detect(stored, v.BackgroundFrame(ti), v.Width, v.Height, params)
				counts.Match(boxes, refBoxes[ti], 0.5)
			},
		})
		if err != nil {
			return nil, err
		}
		f1s = append(f1s, counts.F1())
		t.AddRow(fmt.Sprintf("%d", v.ID), v.Name,
			f2(counts.Precision()), f2(counts.Recall()), f2(counts.F1()))
	}
	t.AddRow("", "GEOMEAN", "", "", f2(geomean(f1s)))
	t.Notes = append(t.Notes,
		"reference = detections on exact frames; paper geomean F1 = 0.96 with YOLOv3",
		"static scenes without detectable objects are excluded, as in the paper")
	return t, nil
}
