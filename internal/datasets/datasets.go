// Package datasets generates the synthetic stand-ins for the paper's ML
// evaluation data (Table III): an MNIST-like image set, a UCI-HAR-like
// accelerometer set and an ECG-heartbeat-like set. Input shapes match the
// real datasets (28×28×1, 128×9, 187×1).
//
// Training splits are independent shuffled samples. Test splits are
// *streams*: runs of consecutive, temporally correlated samples, because
// that is what a deployed IoT device sees — overlapping HAR windows from a
// continuing activity, successive heartbeats of one patient, frames of a
// watched scene. Inter-inference activation similarity is the property
// FlipBit exploits on DNNs (§V-A observes savings coming from activations
// that repeat or return to zero between iterations), so the substitution
// must preserve it.
package datasets

import (
	"math"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// streamRunLen is the number of consecutive correlated samples per test
// stream run before the scene/activity/patient changes.
const streamRunLen = 8

// Set is a labelled dataset split into train and test portions. TestX is
// ordered as a stream; evaluate it in order.
type Set struct {
	Name       string
	InputShape []int // e.g. [28,28,1], [128,9], [187]
	NumClasses int

	TrainX [][]float32
	TrainY []int
	TestX  [][]float32
	TestY  []int
}

// InputLen returns the flattened input length.
func (s *Set) InputLen() int {
	n := 1
	for _, d := range s.InputShape {
		n *= d
	}
	return n
}

// MNISTLike generates a 10-class 28×28 grayscale set. Each class is a
// prototype of random soft strokes; training samples add shifts, amplitude
// jitter and sensor noise. The test stream models a camera watching one
// subject for a few frames before the subject changes.
func MNISTLike(train, test int, seed uint64) *Set {
	rng := xrand.New(seed)
	const h, w = 28, 28
	protos := make([][]float32, 10)
	for c := range protos {
		protos[c] = strokeProto(rng, h, w, 3+rng.Intn(3))
	}
	s := &Set{Name: "mnist-like", InputShape: []int{h, w, 1}, NumClasses: 10}

	renderAt := func(c, dy, dx int, amp float32, noise float64) []float32 {
		x := make([]float32, h*w)
		for y := 0; y < h; y++ {
			for xx := 0; xx < w; xx++ {
				sy, sx := y+dy, xx+dx
				var v float32
				if sy >= 0 && sy < h && sx >= 0 && sx < w {
					v = protos[c][sy*w+sx]
				}
				v = v*amp + float32(rng.NormFloat64()*noise)
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				x[y*w+xx] = v
			}
		}
		return x
	}

	for i := 0; i < train; i++ {
		c := rng.Intn(10)
		s.TrainX = append(s.TrainX, renderAt(c, rng.Intn(5)-2, rng.Intn(5)-2,
			float32(0.8+0.4*rng.Float64()), 0.12))
		s.TrainY = append(s.TrainY, c)
	}
	for len(s.TestX) < test {
		// One run: fixed subject and pose, small noise per frame.
		c := rng.Intn(10)
		dy, dx := rng.Intn(5)-2, rng.Intn(5)-2
		amp := float32(0.8 + 0.4*rng.Float64())
		for k := 0; k < streamRunLen && len(s.TestX) < test; k++ {
			s.TestX = append(s.TestX, renderAt(c, dy, dx, amp, 0.11))
			s.TestY = append(s.TestY, c)
		}
	}
	return s
}

func strokeProto(rng *xrand.RNG, h, w, strokes int) []float32 {
	p := make([]float32, h*w)
	for s := 0; s < strokes; s++ {
		// A stroke is a thick line segment rendered as Gaussian falloff.
		x0, y0 := rng.Float64()*float64(w), rng.Float64()*float64(h)
		x1, y1 := rng.Float64()*float64(w), rng.Float64()*float64(h)
		thick := 1.2 + rng.Float64()*1.5
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				d := pointSegDist(float64(x), float64(y), x0, y0, x1, y1)
				v := math.Exp(-d * d / (2 * thick * thick))
				idx := y*w + x
				if f := float32(v); f > p[idx] {
					p[idx] = f
				}
			}
		}
	}
	return p
}

func pointSegDist(px, py, x0, y0, x1, y1 float64) float64 {
	dx, dy := x1-x0, y1-y0
	l2 := dx*dx + dy*dy
	t := 0.0
	if l2 > 0 {
		t = ((px-x0)*dx + (py-y0)*dy) / l2
		t = math.Max(0, math.Min(1, t))
	}
	cx, cy := x0+t*dx, y0+t*dy
	return math.Hypot(px-cx, py-cy)
}

// HARLike generates a 6-class human-activity set: 128 timesteps × 9
// channels, each class a distinct mixture of periodic components. The test
// stream models sliding windows over a continuing activity: within a run
// the phase advances smoothly, as overlapping UCI-HAR windows do.
func HARLike(train, test int, seed uint64) *Set {
	rng := xrand.New(seed)
	const steps, ch, classes = 128, 9, 6
	type comp struct{ freq, amp, phase float64 }
	protos := make([][][]comp, classes) // class -> channel -> components
	for c := range protos {
		protos[c] = make([][]comp, ch)
		for j := range protos[c] {
			k := 1 + rng.Intn(3)
			cs := make([]comp, k)
			for i := range cs {
				cs[i] = comp{
					freq:  0.5 + rng.Float64()*7,
					amp:   0.2 + rng.Float64()*0.8,
					phase: rng.Float64() * 2 * math.Pi,
				}
			}
			protos[c][j] = cs
		}
	}
	window := func(c int, shift, noise float64) []float32 {
		x := make([]float32, steps*ch)
		for j := 0; j < ch; j++ {
			for t := 0; t < steps; t++ {
				var v float64
				for _, cm := range protos[c][j] {
					v += cm.amp * math.Sin(2*math.Pi*cm.freq*float64(t)/steps+cm.phase+shift)
				}
				v += rng.NormFloat64() * noise
				x[t*ch+j] = float32(v)
			}
		}
		return x
	}
	s := &Set{Name: "har-like", InputShape: []int{steps, ch}, NumClasses: classes}
	for i := 0; i < train; i++ {
		c := rng.Intn(classes)
		s.TrainX = append(s.TrainX, window(c, rng.Float64()*2*math.Pi, 0.4))
		s.TrainY = append(s.TrainY, c)
	}
	for len(s.TestX) < test {
		// One run: a continuing activity; overlapping windows advance
		// the phase slightly each step.
		c := rng.Intn(classes)
		shift := rng.Float64() * 2 * math.Pi
		for k := 0; k < streamRunLen && len(s.TestX) < test; k++ {
			s.TestX = append(s.TestX, window(c, shift, 0.14))
			s.TestY = append(s.TestY, c)
			shift += 0.1
		}
	}
	return s
}

// ECGLike generates a binary abnormal-heartbeat set of 187-sample beats
// (the shape of the MIT-BIH derived set): normal beats are a P-QRS-T
// template; abnormal beats carry one of several morphological distortions.
// The test stream models a patient monitor: runs of beats share morphology
// and differ only in beat-to-beat jitter.
func ECGLike(train, test int, seed uint64) *Set {
	rng := xrand.New(seed)
	const samples = 187
	s := &Set{Name: "ecg-like", InputShape: []int{samples}, NumClasses: 2}
	for i := 0; i < train; i++ {
		abnormal := rng.Intn(2) == 1
		kind := rng.Intn(4)
		y := 0
		if abnormal {
			y = 1
		}
		s.TrainX = append(s.TrainX, ecgBeat(rng, samples, abnormal, kind, 1.0, 0.06))
		s.TrainY = append(s.TrainY, y)
	}
	for len(s.TestX) < test {
		abnormal := rng.Intn(2) == 1
		kind := rng.Intn(4)
		y := 0
		if abnormal {
			y = 1
		}
		for k := 0; k < streamRunLen && len(s.TestX) < test; k++ {
			s.TestX = append(s.TestX, ecgBeat(rng, samples, abnormal, kind, 0.35, 0.045))
			s.TestY = append(s.TestY, y)
		}
	}
	return s
}

// ecgBeat renders one beat. jitterScale shrinks the positional/amplitude
// jitter (streams use small values so consecutive beats look alike).
func ecgBeat(rng *xrand.RNG, n int, abnormal bool, kind int, jitterScale, noise float64) []float32 {
	bump := func(x []float32, center, width, amp float64) {
		for t := range x {
			d := (float64(t) - center) / width
			x[t] += float32(amp * math.Exp(-d*d/2))
		}
	}
	x := make([]float32, n)
	jitter := func(v, j float64) float64 { return v + (rng.Float64()*2-1)*j*jitterScale }
	// Normal morphology: P wave, sharp QRS, T wave.
	pAmp, qrsAmp, qrsW, tAmp := 0.18, 1.0, 2.5, 0.32
	tPos := 128.0
	if abnormal {
		switch kind {
		case 0: // wide QRS (bundle branch block)
			qrsW = 7
		case 1: // missing P
			pAmp = 0
		case 2: // inverted T
			tAmp = -0.3
		case 3: // premature beat: QRS shifted with ectopic bump
			tPos = 100
			bump(x, jitter(155, 6), 6, 0.5)
		}
	}
	bump(x, jitter(35, 3), 6, jitter(pAmp, 0.04))
	bump(x, jitter(78, 2), qrsW, jitter(qrsAmp, 0.12))
	bump(x, jitter(tPos, 4), 10, jitter(tAmp, 0.05))
	for t := range x {
		x[t] += float32(rng.NormFloat64() * noise)
	}
	return x
}
