package datasets

import (
	"math"
	"testing"
)

func TestShapes(t *testing.T) {
	cases := []struct {
		set  *Set
		want int
	}{
		{MNISTLike(20, 20, 1), 28 * 28},
		{HARLike(20, 20, 2), 128 * 9},
		{ECGLike(20, 20, 3), 187},
	}
	for _, c := range cases {
		if c.set.InputLen() != c.want {
			t.Errorf("%s: input len %d, want %d", c.set.Name, c.set.InputLen(), c.want)
		}
		if len(c.set.TrainX) != 20 || len(c.set.TestX) != 20 {
			t.Errorf("%s: wrong split sizes", c.set.Name)
		}
		for _, x := range c.set.TrainX {
			if len(x) != c.want {
				t.Fatalf("%s: sample length %d", c.set.Name, len(x))
			}
		}
	}
}

func TestLabelsInRange(t *testing.T) {
	for _, set := range []*Set{MNISTLike(50, 50, 4), HARLike(50, 50, 5), ECGLike(50, 50, 6)} {
		for _, y := range append(append([]int{}, set.TrainY...), set.TestY...) {
			if y < 0 || y >= set.NumClasses {
				t.Errorf("%s: label %d out of [0,%d)", set.Name, y, set.NumClasses)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := MNISTLike(10, 10, 42)
	b := MNISTLike(10, 10, 42)
	for i := range a.TrainX {
		for j := range a.TrainX[i] {
			if a.TrainX[i][j] != b.TrainX[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c := MNISTLike(10, 10, 43)
	diff := false
	for j := range a.TrainX[0] {
		if a.TrainX[0][j] != c.TrainX[0][j] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestAllClassesPresent(t *testing.T) {
	set := MNISTLike(300, 100, 7)
	seen := map[int]bool{}
	for _, y := range set.TrainY {
		seen[y] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d of 10 classes in training data", len(seen))
	}
}

// meanDelta computes the average L1 distance between consecutive samples.
func meanDelta(xs [][]float32) float64 {
	var total float64
	count := 0
	for i := 1; i < len(xs); i++ {
		var d float64
		for j := range xs[i] {
			d += math.Abs(float64(xs[i][j] - xs[i-1][j]))
		}
		total += d / float64(len(xs[i]))
		count++
	}
	return total / float64(count)
}

// TestStreamCorrelation: the test split must be a temporally correlated
// stream — consecutive samples much closer than shuffled training samples.
// This property carries the paper's inter-inference similarity (§V-A).
func TestStreamCorrelation(t *testing.T) {
	for _, set := range []*Set{MNISTLike(64, 64, 8), HARLike(64, 64, 9), ECGLike(64, 64, 10)} {
		test := meanDelta(set.TestX)
		train := meanDelta(set.TrainX)
		if test >= train*0.8 {
			t.Errorf("%s: test stream Δ %.4f not much below train Δ %.4f", set.Name, test, train)
		}
	}
}

func TestECGClassesDiffer(t *testing.T) {
	set := ECGLike(200, 0, 11)
	// Mean absolute difference between a normal and an abnormal beat
	// should exceed in-class jitter.
	var normal, abnormal []float32
	for i, y := range set.TrainY {
		if y == 0 && normal == nil {
			normal = set.TrainX[i]
		}
		if y == 1 && abnormal == nil {
			abnormal = set.TrainX[i]
		}
	}
	if normal == nil || abnormal == nil {
		t.Fatal("both classes should appear in 200 samples")
	}
}
