package flipbit_test

import (
	"testing"

	flipbit "github.com/flipbit-sim/flipbit"
)

// TestPublicAPIQuickstart exercises the façade exactly as the package doc
// advertises it.
func TestPublicAPIQuickstart(t *testing.T) {
	dev, err := flipbit.NewDevice(flipbit.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetApproxRegion(0, 4096); err != nil {
		t.Fatal(err)
	}
	if err := dev.SetWidth(flipbit.W8); err != nil {
		t.Fatal(err)
	}
	dev.SetThreshold(2)

	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := dev.Write(0, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := dev.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if buf[i] != data[i] {
			t.Fatalf("first write to erased flash must be exact; byte %d differs", i)
		}
	}
	if dev.Flash().Stats().Energy <= 0 {
		t.Error("no energy accounted")
	}
}

func TestPublicEncoders(t *testing.T) {
	if _, err := flipbit.NewNBitEncoder(2); err != nil {
		t.Error(err)
	}
	if _, err := flipbit.NewNBitEncoder(0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := flipbit.NewMLCEncoder(1); err != nil {
		t.Error(err)
	}
	one := flipbit.NewOneBitEncoder()
	opt := flipbit.NewOptimalEncoder()
	// The paper's worked example through the public API.
	if got := one.Approximate(0b0101, 0b0011, flipbit.W8); got != 0b0001 {
		t.Errorf("one-bit example = %04b", got)
	}
	if got := opt.Approximate(0b0101, 0b0011, flipbit.W8); got != 0b0100 {
		t.Errorf("optimal example = %04b", got)
	}
}

func TestPublicCPUModel(t *testing.T) {
	m := flipbit.CortexM0Plus()
	if m.Power <= 0 || m.Clock != 48e6 {
		t.Errorf("unexpected M0+ model: %+v", m)
	}
}

func TestPublicDeviceWithEncoderOption(t *testing.T) {
	enc, err := flipbit.NewNBitEncoder(4)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := flipbit.NewDevice(flipbit.DefaultSpec(), flipbit.WithEncoder(enc))
	if err != nil {
		t.Fatal(err)
	}
	if dev.Encoder().Name() != "4-bit" {
		t.Errorf("encoder = %s", dev.Encoder().Name())
	}
}
