package flipbit_test

import (
	"errors"
	"fmt"

	"testing"

	flipbit "github.com/flipbit-sim/flipbit"
)

// TestPublicAPIQuickstart exercises the façade exactly as the package doc
// advertises it.
func TestPublicAPIQuickstart(t *testing.T) {
	dev, err := flipbit.NewDevice(flipbit.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetApproxRegion(0, 4096); err != nil {
		t.Fatal(err)
	}
	if err := dev.SetWidth(flipbit.W8); err != nil {
		t.Fatal(err)
	}
	dev.SetThreshold(2)

	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := dev.Write(0, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := dev.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if buf[i] != data[i] {
			t.Fatalf("first write to erased flash must be exact; byte %d differs", i)
		}
	}
	if dev.Flash().Stats().Energy <= 0 {
		t.Error("no energy accounted")
	}
}

func TestPublicEncoders(t *testing.T) {
	if _, err := flipbit.NewNBitEncoder(2); err != nil {
		t.Error(err)
	}
	if _, err := flipbit.NewNBitEncoder(0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := flipbit.NewMLCEncoder(1); err != nil {
		t.Error(err)
	}
	one := flipbit.NewOneBitEncoder()
	opt := flipbit.NewOptimalEncoder()
	// The paper's worked example through the public API.
	if got := one.Approximate(0b0101, 0b0011, flipbit.W8); got != 0b0001 {
		t.Errorf("one-bit example = %04b", got)
	}
	if got := opt.Approximate(0b0101, 0b0011, flipbit.W8); got != 0b0100 {
		t.Errorf("optimal example = %04b", got)
	}
}

func TestPublicCPUModel(t *testing.T) {
	m := flipbit.CortexM0Plus()
	if m.Power <= 0 || m.Clock != 48e6 {
		t.Errorf("unexpected M0+ model: %+v", m)
	}
}

// TestPublicEnduranceManagement drives the endurance façade end to end: a
// tiny health-gated device under a wear-leveling FTL with spares, scrubbed
// synchronously, with health reported at both layers.
func TestPublicEnduranceManagement(t *testing.T) {
	spec := flipbit.DefaultSpec()
	spec.PageSize = 64
	spec.NumPages = 16
	spec.Banks = 1
	spec.EnduranceCycles = 6

	var retires int
	dev, err := flipbit.NewDevice(spec, flipbit.WithHealthGate(),
		flipbit.WithObserver(flipbit.ObserverFunc(func(e flipbit.OpEvent) {
			if e.Kind == flipbit.OpRetire {
				retires++
			}
		})))
	if err != nil {
		t.Fatal(err)
	}
	f := flipbit.NewFTL(dev, flipbit.WithSparePages(2), flipbit.WithSwapDelta(4))
	scr := flipbit.NewScrubber(dev, flipbit.ScrubConfig{
		MaxStuck: 1,
		Refresh:  f.RefreshPage,
		Retire:   f.RetirePage,
	})

	rec := make([]byte, 64)
	for i := 0; i < 200; i++ {
		for j := range rec {
			rec[j] = byte(i + j)
		}
		if err := f.Write(0, rec); err != nil {
			break // spare pool exhausted: clean end of service
		}
		got := make([]byte, len(rec))
		if err := f.Read(0, got); err != nil {
			t.Fatalf("write %d: read back: %v", i, err)
		}
		for j := range got {
			if got[j] != rec[j] {
				t.Fatalf("write %d: acked data corrupted at byte %d", i, j)
			}
		}
		scr.ScrubBank(0, 1)
	}

	h := dev.Flash().Health()
	if h.MaxWear == 0 || len(h.Banks) != 1 {
		t.Errorf("flash health: %+v", h)
	}
	fh := f.Health()
	if fh.SparesTotal != 2 || fh.RetiredData == 0 {
		t.Errorf("ftl health: %+v", fh)
	}
	if retires == 0 {
		t.Error("no OpRetire event reached the op bus")
	}
	if errors.Is(f.Write(0, rec), flipbit.ErrExactDegraded) == (f.SparesRemaining() > 0) {
		t.Errorf("degradation contract: spares=%d", f.SparesRemaining())
	}
}

func TestPublicDeviceWithEncoderOption(t *testing.T) {
	enc, err := flipbit.NewNBitEncoder(4)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := flipbit.NewDevice(flipbit.DefaultSpec(), flipbit.WithEncoder(enc))
	if err != nil {
		t.Fatal(err)
	}
	if dev.Encoder().Name() != "4-bit" {
		t.Errorf("encoder = %s", dev.Encoder().Name())
	}
}

// TestPublicKVS exercises the key-value store façade end to end: mount with
// compaction and checkpointing armed, churn enough to force GC, checkpoint,
// remount O(tail), and observe the stats surface.
func TestPublicKVS(t *testing.T) {
	spec := flipbit.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 24
	dev, err := flipbit.NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := []flipbit.KVOption{
		flipbit.WithKVCompaction(flipbit.CompactionConfig{}),
		flipbit.WithKVCheckpoint(flipbit.CheckpointConfig{SlotPages: 3, Interval: 40}),
		flipbit.WithKVVerify(),
	}
	s, err := flipbit.OpenKVS(dev, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("missing"); !errors.Is(err, flipbit.ErrKVNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrKVNotFound", err)
	}
	val := make([]byte, 24)
	for i := 0; i < 200; i++ {
		val[0] = byte(i)
		if err := s.Put(fmt.Sprintf("key%d", i%8), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Error("churn never forced a compaction")
	}
	if st.Checkpoints == 0 {
		t.Error("no checkpoint committed")
	}

	s2, err := flipbit.OpenKVS(dev, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var kvst flipbit.KVStats = s2.Stats()
	if kvst.CheckpointMounts != 1 {
		t.Errorf("remount did not restore from the checkpoint: %+v", kvst)
	}
	for i := 192; i < 200; i++ {
		want := byte(i)
		got, err := s2.Get(fmt.Sprintf("key%d", i%8))
		if err != nil || got[0] != want {
			t.Fatalf("after remount Get(key%d) = %v, %v; want first byte %d", i%8, got, err, want)
		}
	}
}

// TestPublicScan exercises the in-storage compute surface: a scan index on
// the store, predicate pushdown, and the raw sense primitive.
func TestPublicScan(t *testing.T) {
	spec := flipbit.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 32
	spec.Banks = 2
	dev, err := flipbit.NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	idx := flipbit.KVIndexSpec{
		MaxKeys: 32,
		Fields: []flipbit.KVIndexField{
			{Name: "status", Buckets: 4, Extract: func(_ string, v []byte) int { return int(v[0]) % 4 }},
		},
	}
	s, err := flipbit.OpenKVS(dev, flipbit.WithKVScanIndex(idx))
	if err != nil {
		t.Fatal(err)
	}
	if !s.ScanIndexed() {
		t.Fatal("scan index did not come up")
	}
	for i := 0; i < 16; i++ {
		if err := s.Put(fmt.Sprintf("dev%02d", i), []byte{byte(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	p := flipbit.PredAnd(
		flipbit.PredIn("status", 1, 2),
		flipbit.PredNot(flipbit.PredEq("status", 2)),
	)
	before := dev.Flash().Stats()
	got, err := s.Scan(p)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Flash().Stats().Senses == before.Senses {
		t.Error("scan was not served in-flash")
	}
	if len(got) != 4 {
		t.Fatalf("scan returned %d records, want 4 (status 1)", len(got))
	}
	for _, kv := range got {
		var _ flipbit.KVPair = kv
		if kv.Val[0]%4 != 1 {
			t.Errorf("scan returned %q with status %d", kv.Key, kv.Val[0]%4)
		}
	}

	// The raw primitive: a two-page OR sense charged as one sense.
	var op flipbit.SenseOp = flipbit.SenseOR
	dst := make([]byte, spec.PageSize)
	before = dev.Flash().Stats()
	if err := dev.Flash().SenseMulti(op, []int{0, 2}, []bool{false, false}, dst); err != nil {
		t.Fatal(err)
	}
	d := dev.Flash().Stats()
	if d.Senses != before.Senses+1 || d.PagesSensed != before.PagesSensed+2 {
		t.Errorf("sense accounting: %d senses / %d pages, want +1 / +2", d.Senses-before.Senses, d.PagesSensed-before.PagesSensed)
	}
}
