// XIP device: the full system in one pot — an EM0 microcontroller (the
// repository's Cortex-M0+ stand-in, §IV) executes a program in place from
// NOR flash, configures the FlipBit registers over MMIO exactly as the
// paper's software interface does (§III-C), and logs sensor readings into
// the approximatable region. Instruction fetches, loads and stores all pay
// real flash latency and energy.
//
//	go run ./examples/xipdevice
package main

import (
	"fmt"
	"log"

	flipbit "github.com/flipbit-sim/flipbit"
	"github.com/flipbit-sim/flipbit/internal/mcu"
)

// The firmware: configure FlipBit via the memory-mapped registers, then
// write a ramp of sensor samples into the approximatable log region twice
// (the second pass overwrites the first, which is where FlipBit saves).
const firmware = `
	; --- configure FlipBit (paper §III-C: 4 memory-mapped registers) ---
	li   r1, 0x40000000     ; MMIO base
	li   r0, 0x10000        ; approx region start (page-aligned, after code)
	str  r0, [r1, 0]
	li   r0, 0x20000        ; approx region end
	str  r0, [r1, 4]
	movi r0, 8              ; variable width: uint8
	str  r0, [r1, 8]
	li   r0, 0x40000        ; MAE threshold 4.0 in Q16.16
	str  r0, [r1, 12]

	movi r5, 0              ; pass counter
pass:
	li   r2, 0x20010000     ; log region in flash
	movi r3, 0              ; i
loop:
	; sample = (i*13 + pass*3) & 0xFF  — drifts a little between passes
	movi r4, 13
	mul  r4, r3, r4
	movi r6, 3
	mul  r6, r5, r6
	add  r4, r4, r6
	movi r6, 0xFF
	and  r4, r4, r6
	strb r4, [r2]
	addi r2, r2, 1
	addi r3, r3, 1
	cmpi r3, 1024
	blt  loop
	li   r6, 0x40000010     ; flush the write-combining buffer
	str  r3, [r6]
	addi r5, r5, 1
	cmpi r5, 2
	blt  pass

	; say goodbye on the console port
	li   r1, 0x40000014
	movi r0, 79             ; 'O'
	str  r0, [r1]
	movi r0, 75             ; 'K'
	str  r0, [r1]
	halt
`

func main() {
	fmt.Println("xipdevice — EM0 MCU executing from NOR flash with FlipBit")
	fmt.Println()

	dev, err := flipbit.NewDevice(flipbit.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}
	bus := mcu.NewBus(4096, dev)
	image, err := mcu.Assemble(firmware, mcu.FlashBase)
	if err != nil {
		log.Fatal(err)
	}
	if err := bus.LoadProgram(mcu.FlashBase, image); err != nil {
		log.Fatal(err)
	}
	dev.ResetStats() // don't count programming the firmware itself

	cpu := mcu.NewCPU(bus, mcu.FlashBase)
	if err := cpu.Run(2_000_000); err != nil {
		log.Fatal(err)
	}

	st := dev.Flash().Stats()
	ctrl := dev.Stats()
	fmt.Printf("console: %q\n", bus.Console.String())
	fmt.Printf("cpu: %d cycles, %v\n", cpu.Cycles, cpu.Energy())
	fmt.Printf("flash: %d byte reads (XIP fetches + data), %d programs, %d erases, %v\n",
		st.Reads, st.Programs, st.Erases, st.Energy)
	fmt.Printf("flipbit: %d pages committed erase-free, %d exact fallbacks, mean |error| %.2f\n",
		ctrl.PagesApprox, ctrl.PagesExact, ctrl.MAE())
	fmt.Println()
	fmt.Println("The second pass overwrites the first with slightly drifted values;")
	fmt.Println("pages within the threshold commit with programs only — no erase.")
}
