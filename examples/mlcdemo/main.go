// MLC demo: §VI extends FlipBit from single-level cells (one bit per cell,
// decisions bit by bit) to multi-level cells (two bits per cell, levels
// 11 → 10 → 01 → 00 reachable by program pulses alone, decisions cell by
// cell). This example walks the paper's worked example and compares the
// SLC and MLC encoders on a data sweep.
//
//	go run ./examples/mlcdemo
package main

import (
	"fmt"
	"log"

	flipbit "github.com/flipbit-sim/flipbit"
)

func main() {
	fmt.Println("mlcdemo — n-cell approximation for multi-level-cell flash (§VI)")
	fmt.Println()

	oneCell, err := flipbit.NewMLCEncoder(1)
	if err != nil {
		log.Fatal(err)
	}
	twoCell, err := flipbit.NewMLCEncoder(2)
	if err != nil {
		log.Fatal(err)
	}
	twoBit, err := flipbit.NewNBitEncoder(2)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's worked example: previous = 0101, exact = 0011.
	fmt.Println("worked example (previous=0101, exact=0011):")
	fmt.Printf("  SLC 2-bit  → %04b\n", twoBit.Approximate(0b0101, 0b0011, flipbit.W8))
	fmt.Printf("  MLC 1-cell → %04b   (paper §VI: 0001)\n",
		oneCell.Approximate(0b0101, 0b0011, flipbit.W8))
	fmt.Println()

	// Sweep correlated rewrites and compare mean error.
	seed := uint32(7)
	next := func() uint32 { seed = seed*1664525 + 1013904223; return seed }
	encoders := []struct {
		name string
		enc  flipbit.Encoder
	}{
		{"SLC 2-bit", twoBit},
		{"MLC 1-cell", oneCell},
		{"MLC 2-cell", twoCell},
	}
	const trials = 200000
	fmt.Printf("mean |error| over %d correlated 8-bit rewrites (Δ ≈ ±8):\n", trials)
	for _, e := range encoders {
		var sum float64
		s2 := uint32(7)
		n2 := func() uint32 { s2 = s2*1664525 + 1013904223; return s2 }
		_ = next
		for i := 0; i < trials; i++ {
			prev := n2() & 0xFF
			d := int32(prev) + int32(n2()%17) - 8
			if d < 0 {
				d = 0
			}
			if d > 255 {
				d = 255
			}
			exact := uint32(d)
			got := e.enc.Approximate(prev, exact, flipbit.W8)
			diff := int64(exact) - int64(got)
			if diff < 0 {
				diff = -diff
			}
			sum += float64(diff)
		}
		fmt.Printf("  %-11s %.3f\n", e.name, sum/trials)
	}
	fmt.Println("\nMLC reaches any lower level per cell without an erase, so its error")
	fmt.Println("structure differs from SLC even on identical data.")
}
