// Videostream: an IoT camera ("sense and send", §IV of the paper) writes
// each captured frame to the same flash region before transmitting it.
// FlipBit approximates the writes; the example reports flash energy,
// erases (lifetime) and PSNR against the exact frames.
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"
	"math"

	flipbit "github.com/flipbit-sim/flipbit"
)

const (
	width  = 64
	height = 64
	frames = 60
)

// frame renders a procedural surveillance scene: a static background with
// a bright object drifting across it plus sensor noise. Purely a function
// of t, so the exact reference is always reconstructible.
func frame(t int) []byte {
	f := make([]byte, width*height)
	cx := 8.0 + 0.6*float64(t)
	cy := 30.0 + 0.2*float64(t)
	seed := uint32(t)*2654435761 + 1
	next := func() uint32 { seed = seed*1664525 + 1013904223; return seed }
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			v := 110 + 30*math.Sin(0.1*float64(x)) + 20*math.Cos(0.07*float64(y))
			dx, dy := float64(x)-cx, float64(y)-cy
			if dx*dx+dy*dy < 49 {
				v = 225
			}
			v += float64(next()%5) - 2 // sensor noise
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			f[y*width+x] = byte(v)
		}
	}
	return f
}

func psnr(a, b []byte) float64 {
	var mse float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		mse += d * d
	}
	mse /= float64(len(a))
	if mse == 0 {
		return 99
	}
	return 10 * math.Log10(255*255/mse)
}

func capture(threshold float64) (flipbit.FlashStats, float64) {
	dev, err := flipbit.NewDevice(flipbit.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}
	if threshold >= 0 {
		if err := dev.SetApproxRegion(0, width*height); err != nil {
			log.Fatal(err)
		}
		if err := dev.SetWidth(flipbit.W8); err != nil {
			log.Fatal(err)
		}
		dev.SetThreshold(threshold)
	}
	stored := make([]byte, width*height)
	var psnrSum float64
	for t := 0; t < frames; t++ {
		exact := frame(t)
		if err := dev.Write(0, exact); err != nil {
			log.Fatal(err)
		}
		if err := dev.Read(0, stored); err != nil {
			log.Fatal(err)
		}
		psnrSum += psnr(exact, stored)
	}
	return dev.Flash().Stats(), psnrSum / frames
}

func main() {
	fmt.Printf("videostream — %d frames of %dx%d capture to flash\n\n", frames, width, height)
	baseStats, basePSNR := capture(-1)
	fmt.Printf("%-24s energy %-10v erases %-5d PSNR %.1f dB\n",
		"exact baseline", baseStats.Energy, baseStats.Erases, basePSNR)
	for _, thr := range []float64{1, 2, 8} {
		st, p := capture(thr)
		fmt.Printf("FlipBit threshold %-6g energy %-10v erases %-5d PSNR %.1f dB  (saves %.1f%%)\n",
			thr, st.Energy, st.Erases, p,
			100*(1-float64(st.Energy)/float64(baseStats.Energy)))
	}
	fmt.Println("\n≥40 dB is visually lossless for human viewers (paper §V, Fig. 10).")
}
