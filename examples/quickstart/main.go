// Quickstart: store a stream of noisy sensor readings in flash, first
// exactly, then through FlipBit, and compare energy, erases and error.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	flipbit "github.com/flipbit-sim/flipbit"
)

func main() {
	// A slowly drifting temperature-like signal with sensor noise,
	// sampled into 8-bit codes — the kind of data IoT devices log.
	const samples = 4096
	readings := make([]byte, samples)
	seed := uint32(12345)
	next := func() uint32 { seed = seed*1664525 + 1013904223; return seed }
	base := 120.0
	for i := range readings {
		base += float64(int(next()%7)) - 3 // drift
		if base < 40 {
			base = 40
		}
		if base > 215 {
			base = 215
		}
		readings[i] = byte(base) + byte(next()%5)
	}

	run := func(name string, threshold float64) flipbit.FlashStats {
		dev, err := flipbit.NewDevice(flipbit.DefaultSpec())
		if err != nil {
			log.Fatal(err)
		}
		if threshold >= 0 {
			// Mark the log region approximatable (Listing 2's
			// linker section) and set the error budget
			// (Listing 1's setApproxThreshold).
			if err := dev.SetApproxRegion(0, 8192); err != nil {
				log.Fatal(err)
			}
			if err := dev.SetWidth(flipbit.W8); err != nil {
				log.Fatal(err)
			}
			dev.SetThreshold(threshold)
		}
		// Rewrite the same log region 16 times, as a circular sensor
		// log does; this is the repeated-write pattern FlipBit helps.
		for round := 0; round < 16; round++ {
			for i := range readings {
				readings[i] += byte(next() % 3)
			}
			if err := dev.Write(0, readings); err != nil {
				log.Fatal(err)
			}
		}
		// Read the final log back and measure the error FlipBit left.
		stored := make([]byte, samples)
		if err := dev.Read(0, stored); err != nil {
			log.Fatal(err)
		}
		var sumErr int
		for i := range stored {
			d := int(stored[i]) - int(readings[i])
			if d < 0 {
				d = -d
			}
			sumErr += d
		}
		st := dev.Flash().Stats()
		fmt.Printf("%-22s energy %-10v erases %-5d programs %-6d mean |error| %.2f\n",
			name, st.Energy, st.Erases, st.Programs, float64(sumErr)/samples)
		return st
	}

	fmt.Println("FlipBit quickstart — 16 rewrites of a 4 KiB sensor log")
	fmt.Println()
	exact := run("exact baseline", -1)
	fb := run("FlipBit (threshold 2)", 2)
	fmt.Println()
	fmt.Printf("flash energy saved: %.1f%%   erases avoided: %.1f%%\n",
		100*(1-float64(fb.Energy)/float64(exact.Energy)),
		100*(1-float64(fb.Erases)/float64(exact.Erases)))
}
