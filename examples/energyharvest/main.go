// Energyharvest: §VI's energy-harvesting scenario. An intermittently
// powered device checkpoints its computation state to non-volatile flash
// before every power loss and restores it afterwards. FlipBit approximates
// the checkpoint writes, stretching each harvested energy budget further.
//
//	go run ./examples/energyharvest
package main

import (
	"fmt"
	"log"

	flipbit "github.com/flipbit-sim/flipbit"
)

// The device computes a long exponential moving average over a sensor
// stream; its state is the 2 KiB window of accumulators it must not lose.
const stateBytes = 2048

func main() {
	fmt.Println("energyharvest — intermittent computing with approximate checkpoints")
	fmt.Println()

	run := func(name string, threshold float64) flipbit.FlashStats {
		dev, err := flipbit.NewDevice(flipbit.DefaultSpec())
		if err != nil {
			log.Fatal(err)
		}
		if threshold >= 0 {
			if err := dev.SetApproxRegion(0, 2048); err != nil {
				log.Fatal(err)
			}
			if err := dev.SetWidth(flipbit.W8); err != nil {
				log.Fatal(err)
			}
			dev.SetThreshold(threshold)
		}
		state := make([]byte, stateBytes)
		restored := make([]byte, stateBytes)
		seed := uint32(99)
		next := func() uint32 { seed = seed*1664525 + 1013904223; return seed }
		var maxDrift int
		const onPeriods = 64
		for period := 0; period < onPeriods; period++ {
			// One harvested on-period of work: the accumulators
			// move a little (EMA over a slowly changing signal).
			for i := range state {
				state[i] = byte((int(state[i])*7 + int(next()%32)) / 8)
			}
			// Power is about to fail: checkpoint to flash.
			if err := dev.Write(0, state); err != nil {
				log.Fatal(err)
			}
			// Power loss wipes SRAM; restore from flash.
			if err := dev.Read(0, restored); err != nil {
				log.Fatal(err)
			}
			for i := range state {
				d := int(state[i]) - int(restored[i])
				if d < 0 {
					d = -d
				}
				if d > maxDrift {
					maxDrift = d
				}
			}
			copy(state, restored) // continue from the checkpoint
		}
		st := dev.Flash().Stats()
		fmt.Printf("%-24s checkpoint energy %-10v erases %-4d worst per-byte drift %d\n",
			name, st.Energy, st.Erases, maxDrift)
		return st
	}

	exact := run("exact checkpoints", -1)
	fb := run("FlipBit (threshold 3)", 3)
	fmt.Println()
	saved := 1 - float64(fb.Energy)/float64(exact.Energy)
	fmt.Printf("checkpoint energy saved: %.1f%% — %.1f× more checkpoints per harvested budget\n",
		100*saved, 1/(1-saved))
	fmt.Println("(EH applications tolerate approximate state; see §VI and [27,55,63].)")
}
