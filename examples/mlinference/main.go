// ML inference: the "compute and send" workload of the paper (§IV). A
// quantized neural network runs on-device; because SRAM is tiny, every
// layer's activation is written to flash and read back before the next
// layer. FlipBit approximates those activation writes.
//
// The flash device is driven through the public API; the network engine and
// synthetic ECG dataset come from the evaluation substrates in internal/.
//
//	go run ./examples/mlinference
package main

import (
	"fmt"
	"log"

	flipbit "github.com/flipbit-sim/flipbit"
	"github.com/flipbit-sim/flipbit/internal/nn"
)

func main() {
	fmt.Println("mlinference — abnormal-heartbeat detection with activations in flash")
	fmt.Println("model: ecg_mlp (187–200–1, 37,801 parameters — Table III)")
	fmt.Println()

	model := nn.TrainedModel("ecg_mlp")
	calib := model.Set.TrainX[:20]

	run := func(threshold float64) (float64, flipbit.FlashStats) {
		dev, err := flipbit.NewDevice(flipbit.DefaultSpec())
		if err != nil {
			log.Fatal(err)
		}
		runner, err := nn.NewFlashRunner(model.Net, dev, calib)
		if err != nil {
			log.Fatal(err)
		}
		dev.SetThreshold(threshold)
		acc, err := runner.Evaluate(model.Set, 120)
		if err != nil {
			log.Fatal(err)
		}
		return acc, dev.Flash().Stats()
	}

	baseAcc, baseStats := run(0)
	fmt.Printf("%-22s accuracy %.3f  flash energy %-10v erases %d\n",
		"exact (threshold 0)", baseAcc, baseStats.Energy, baseStats.Erases)
	for _, thr := range []float64{2, 4, 8, 16} {
		acc, st := run(thr)
		fmt.Printf("FlipBit threshold %-4g accuracy %.3f  flash energy %-10v erases %-4d saves %.1f%%\n",
			thr, acc, st.Energy, st.Erases,
			100*(1-float64(st.Energy)/float64(baseStats.Energy)))
	}
	fmt.Println("\nThe paper tunes the threshold per network for <=1% accuracy loss (§V-A).")
}
