package flipbit_test

import (
	"fmt"

	flipbit "github.com/flipbit-sim/flipbit"
)

// The basic write path: configure the approximatable region, width and
// threshold, then write and read through the device.
func Example() {
	dev, err := flipbit.NewDevice(flipbit.DefaultSpec())
	if err != nil {
		panic(err)
	}
	_ = dev.SetApproxRegion(0, 4096)
	_ = dev.SetWidth(flipbit.W8)
	dev.SetThreshold(2)

	data := []byte{10, 20, 30, 40}
	_ = dev.Write(0, data)
	buf := make([]byte, 4)
	_ = dev.Read(0, buf)
	fmt.Println(buf)
	// Output: [10 20 30 40]
}

// The paper's worked example (Fig. 4 / Fig. 5): approximating exact = 0011
// over previous = 0101 with the 1-bit and 2-bit algorithms.
func ExampleNewNBitEncoder() {
	oneBit := flipbit.NewOneBitEncoder()
	twoBit, _ := flipbit.NewNBitEncoder(2)
	optimal := flipbit.NewOptimalEncoder()

	const previous, exact = 0b0101, 0b0011
	fmt.Printf("1-bit:   %04b\n", oneBit.Approximate(previous, exact, flipbit.W8))
	fmt.Printf("2-bit:   %04b\n", twoBit.Approximate(previous, exact, flipbit.W8))
	fmt.Printf("optimal: %04b\n", optimal.Approximate(previous, exact, flipbit.W8))
	// Output:
	// 1-bit:   0001
	// 2-bit:   0100
	// optimal: 0100
}

// Approximate writes never need an erase: rewriting a page with a bitwise
// subset of its contents costs programs only.
func ExampleDevice_Write() {
	dev, _ := flipbit.NewDevice(flipbit.DefaultSpec())
	_ = dev.SetApproxRegion(0, 256)
	_ = dev.SetWidth(flipbit.W8)
	dev.SetThreshold(4)

	first := make([]byte, 256)
	for i := range first {
		first[i] = 0xF0
	}
	_ = dev.Write(0, first)
	second := make([]byte, 256)
	for i := range second {
		second[i] = 0x70 // subset of 0xF0: reachable via programs
	}
	_ = dev.Write(0, second)
	fmt.Println("erases:", dev.Flash().Stats().Erases)
	// Output: erases: 0
}
