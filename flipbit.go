// Package flipbit is a simulation library for FlipBit — approximate flash
// memory for IoT devices (Buck, Ganesan, Enright Jerger; HPCA 2024).
//
// Flash memory can clear bits (1 → 0) with a cheap byte program, but
// setting a bit (0 → 1) forces a page erase that is ~340× slower, ~360×
// more energetic, and wears the device out. FlipBit exploits this
// asymmetry: instead of writing an exact value, the flash controller writes
// the closest value reachable using only 1 → 0 transitions, as long as the
// page's mean absolute error stays under a programmer-supplied threshold.
//
// The package re-exports the stable public surface of the internal
// implementation:
//
//   - Device: a NOR flash chip with the FlipBit controller attached
//     (configuration registers, dual-buffer commit path, statistics);
//   - Spec: the flash part model (geometry, Table I latency/energy,
//     endurance);
//   - the approximation encoders of §III-A (1-bit, n-bit, optimal, and the
//     MLC n-cell variant of §VI).
//
// Quickstart:
//
//	dev, err := flipbit.NewDevice(flipbit.DefaultSpec())
//	if err != nil { ... }
//	dev.SetApproxRegion(0, 4096)        // like the linker script of Listing 2
//	dev.SetWidth(flipbit.W8)            // the variable-type register
//	dev.SetThreshold(2)                 // setApproxThreshold(2) of Listing 1
//	err = dev.Write(0, sensorData)      // may approximate, never erases if it can help it
//	_ = dev.Read(0, buf)
//	stats := dev.Flash().Stats()        // erases, programs, energy, busy time
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/flipbit; runnable scenarios are under examples/.
package flipbit

import (
	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/ftl"
	"github.com/flipbit-sim/flipbit/internal/isc"
	"github.com/flipbit-sim/flipbit/internal/kvs"
)

// Device is a flash chip with the FlipBit controller attached. See
// internal/core for the commit-path documentation.
type Device = core.Device

// Option configures a Device at construction.
type Option = core.Option

// Spec describes a flash part: geometry, datasheet timing/energy, and
// endurance.
type Spec = flash.Spec

// FlashStats counts flash operations and their energy/latency cost.
type FlashStats = flash.Stats

// ControllerStats aggregates the FlipBit controller's page decisions.
type ControllerStats = core.Stats

// Encoder produces an erase-free approximation of a value given the
// previous cell contents.
type Encoder = approx.Encoder

// BatchEncoder is an Encoder with a compiled byte-at-a-time batch kernel:
// EncodeSlice encodes a whole span in one call with statistics accumulated
// in-kernel. The built-in 1-bit, n-bit, n-cell (MLC) and exact encoders
// implement it; the controller engages a kernel automatically on every
// cell mode where its output and reachability semantics are sound (the
// subset-producing bit kernels everywhere, the n-cell kernel on MLC, the
// exact kernel on SLC).
type BatchEncoder = approx.BatchEncoder

// BatchStats are the aggregates a batch kernel computes while encoding.
type BatchStats = approx.BatchStats

// Width is the logical width of values stored in the approximatable region.
type Width = bits.Width

// Supported value widths (the §III-C variable-type register).
const (
	W8  = bits.W8
	W16 = bits.W16
	W32 = bits.W32
)

// Error metrics and fallback policies for the page gate.
const (
	MetricMAE        = core.MetricMAE
	MetricMSE        = core.MetricMSE
	FallbackPerPage  = core.FallbackPerPage
	FallbackPerValue = core.FallbackPerValue
)

// Energy is an amount of energy in joules; Power is watts.
type (
	Energy = energy.Energy
	Power  = energy.Power
)

// Observer receives one OpEvent per flash operation from the op-event bus.
// Implementations must be safe for concurrent use: banks emit in parallel.
type Observer = flash.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = flash.ObserverFunc

// OpEvent describes one flash operation: kind, bank, address, cost.
type OpEvent = flash.OpEvent

// OpKind discriminates OpEvent records.
type OpKind = flash.OpKind

// Operation kinds carried by OpEvent.Kind.
const (
	OpRead        = flash.OpRead
	OpProgram     = flash.OpProgram
	OpProgramSkip = flash.OpProgramSkip
	OpErase       = flash.OpErase
)

// Ledger is a concurrency-safe energy accounting sink; subscribe one with
// NewLedgerObserver to meter a device's energy per operation kind.
type Ledger = energy.Ledger

// Trace records state-changing flash operations in a capped ring buffer.
type Trace = flash.Trace

// NewLedgerObserver adapts a Ledger into an Observer for WithObserver or
// Device.Flash().Attach.
func NewLedgerObserver(l *Ledger) Observer { return flash.NewLedgerObserver(l) }

// NewTrace returns a Trace retaining at most limit entries (0 or negative
// selects flash.DefaultTraceLimit); older entries are evicted and counted.
func NewTrace(limit int) *Trace { return flash.NewTrace(limit) }

// NewDevice builds a FlipBit device over a fresh (fully erased) flash array
// described by spec. Approximation starts disabled; configure it with
// SetApproxRegion, SetWidth and SetThreshold.
func NewDevice(spec Spec, opts ...Option) (*Device, error) {
	return core.NewDevice(spec, opts...)
}

// DefaultSpec returns the embedded NOR part the paper evaluates against:
// 256-byte pages, Table I latency and energy, 100k-cycle endurance.
func DefaultSpec() Spec { return flash.DefaultSpec() }

// WithEncoder selects the approximation encoder (default: 2-bit).
func WithEncoder(e Encoder) Option { return core.WithEncoder(e) }

// WithBanks overrides the flash bank count (parallelism domains) regardless
// of what spec.Banks says. Pages interleave round-robin across banks;
// operations on different banks may proceed concurrently.
func WithBanks(n int) Option { return core.WithBanks(n) }

// WithObserver attaches an observer to the device's op-event bus at
// construction, before any operation can be missed.
func WithObserver(o Observer) Option { return core.WithObserver(o) }

// WithScalarEncode forces the per-value reference encode path even when the
// encoder has a batch kernel — for differential testing and benchmarking.
func WithScalarEncode() Option { return core.WithScalarEncode() }

// NewNBitEncoder returns the n-bit approximation encoder of Algorithm 2
// (1 <= n <= 8). n = 2 is the paper's headline configuration.
func NewNBitEncoder(n int) (Encoder, error) { return approx.NewNBit(n) }

// NewOneBitEncoder returns Algorithm 1, the simplest scalable encoder.
func NewOneBitEncoder() Encoder { return approx.OneBit{} }

// NewOptimalEncoder returns the minimum-error encoder (the paper's baseline
// formulation, solved in O(width) rather than by subset enumeration).
func NewOptimalEncoder() Encoder { return approx.Optimal{} }

// NewMLCEncoder returns the n-cell approximation encoder for multi-level
// cell flash (§VI).
func NewMLCEncoder(nCells int) (Encoder, error) { return approx.NewNCell(nCells) }

// NewFloat32Encoder returns the §VI floating-point encoder: the low m
// mantissa bits (1..23) may be approximated by inner (nil = the 2-bit
// algorithm); sign and exponent stay exact, with unreachable values forcing
// the controller's erase fallback. Use with width W32 over IEEE-754 bit
// patterns.
func NewFloat32Encoder(m int, inner Encoder) (Encoder, error) {
	return approx.NewFloat32(m, inner)
}

// Fault is one scheduled flash failure: power loss tearing the victim
// program or erase, cells left stuck at 0 by an erase, or read-disturb
// drift. Arm one with Device.Flash().ArmFault or a schedule via
// WithFaultSchedule.
type Fault = flash.Fault

// FaultKind discriminates Fault records.
type FaultKind = flash.FaultKind

// Fault kinds for Fault.Kind.
const (
	FaultNone        = flash.FaultNone
	FaultPowerLoss   = flash.FaultPowerLoss
	FaultStuckBits   = flash.FaultStuckBits
	FaultReadDisturb = flash.FaultReadDisturb
)

// FaultSchedule supplies faults to re-arm the device after each firing;
// implementations must be deterministic so campaigns replay from a seed.
type FaultSchedule = flash.FaultSchedule

// FaultMix parameterises NewRandomFaultSchedule: relative weights per fault
// kind and the ranges gaps and bit counts are drawn from.
type FaultMix = flash.FaultMix

// ErrPowerLoss is reported by an operation interrupted by an injected
// power-loss fault; the flash array is left in the torn state the real
// event would leave.
var ErrPowerLoss = flash.ErrPowerLoss

// NewRandomFaultSchedule returns the endless deterministic fault stream for
// (seed, mix) — the same seed always produces the same schedule.
func NewRandomFaultSchedule(seed uint64, mix FaultMix) FaultSchedule {
	return flash.NewRandomSchedule(seed, mix)
}

// WithFaultSchedule installs a deterministic fault schedule on the device at
// construction, before any operation can escape it.
func WithFaultSchedule(s FaultSchedule) Option { return core.WithFaultSchedule(s) }

// CellMode selects the cell density — SLC (default), MLC or TLC — and
// with it the per-cell programming semantics on a Spec.
type CellMode = flash.CellMode

// Cell modes for Spec.Cell.
const (
	SLC = flash.SLC
	MLC = flash.MLC
	TLC = flash.TLC
)

// DensitySpec re-parameterises a Spec for the given cell density: program,
// read and sense costs scale with bits per cell, endurance drops one
// decade per extra bit, erase is unchanged. Use it to run the same part at
// SLC, MLC or TLC in a density sweep.
func DensitySpec(base Spec, mode CellMode) Spec { return flash.DensitySpec(base, mode) }

// CortexM0Plus returns the reference MCU power model used throughout the
// paper's energy comparisons (2.275 mW @ 48 MHz).
func CortexM0Plus() energy.CPUModel { return energy.CortexM0Plus() }

// --- Endurance management: health, scrubbing, retirement ---

// HealthReport is a device-wide endurance snapshot: per-bank wear
// histograms, dead/retired page counts, and drifted-cell totals.
type HealthReport = flash.HealthReport

// BankHealth is one bank's slice of a HealthReport.
type BankHealth = flash.BankHealth

// Additional operation kinds emitted on the op-event bus by the
// endurance-management layer.
const (
	OpScrub  = flash.OpScrub
	OpRetire = flash.OpRetire
)

// ErrExactDegraded is returned by a health-gated device (WithHealthGate)
// when exact data would land on a degraded page — or when the erase an
// exact commit needs would push a page past its endurance rating.
// Approximate writes keep flowing onto degraded pages.
var ErrExactDegraded = core.ErrExactDegraded

// ErrPageRetired is returned by programs and erases against a page the
// management layer has taken out of service; reads still work.
var ErrPageRetired = flash.ErrPageRetired

// ErrWornOut is returned once a page has exceeded its endurance and can no
// longer be erased reliably.
var ErrWornOut = flash.ErrWornOut

// ScrubConfig parameterises the background scrubber: tick rate, pages per
// tick, the stuck-cell budget approximatable pages may absorb, and optional
// Refresh/Retire hooks for managed (FTL) devices.
type ScrubConfig = core.ScrubConfig

// Scrubber is the background scrub engine: one rate-limited goroutine per
// bank sampling drift and refreshing, absorbing, or retiring pages.
type Scrubber = core.Scrubber

// ScrubStats counts scrubber decisions.
type ScrubStats = core.ScrubStats

// WithHealthGate makes the commit path consult page health: exact data is
// refused on degraded (or about-to-die) pages with ErrExactDegraded, while
// approximate data keeps flowing onto them — graceful degradation instead
// of silent corruption.
func WithHealthGate() Option { return core.WithHealthGate() }

// WithScrubber builds a background scrubber over the device at
// construction; retrieve it with Device.Scrubber and call Start.
func WithScrubber(cfg ScrubConfig) Option { return core.WithScrubber(cfg) }

// NewScrubber builds a stopped scrubber over an existing device.
func NewScrubber(d *Device, cfg ScrubConfig) *Scrubber { return core.NewScrubber(d, cfg) }

// --- Async commit pipeline and sharded instrumentation ---

// Commit is the completion future returned by Device.WriteAsync: Wait
// blocks until every chunk of the write committed and returns the first
// hard error (or a best-effort ErrWornOut). Wait at most once per Commit.
type Commit = core.Commit

// ShardObserver is an Observer that can split itself into per-bank shards:
// when attached to a device, each flash bank delivers its events to its own
// shard under the bank's lock, so the observer needs no cross-bank
// synchronization of its own. Trace implements it.
type ShardObserver = flash.ShardObserver

// ErrAsyncClosed is returned by commits enqueued after Device.Close.
var ErrAsyncClosed = core.ErrAsyncClosed

// WithAsyncCommit enables the asynchronous write pipeline: Device.WriteAsync
// enqueues page commits onto per-bank queues of the given depth, where
// per-bank workers coalesce same-bank neighbours into group commits (one
// load→apply→encode→gate→program pass with a single batch-kernel call).
// Write/Read stay synchronous and may be mixed freely; Flush drains, Close
// shuts the pipeline down. Per-bank order is enqueue order, so results —
// stats included, bit for bit — match the serial path.
func WithAsyncCommit(depth int) Option { return core.WithAsyncCommit(depth) }

// --- Wear-leveling FTL with a spare pool ---

// FTL is a page-mapped flash translation layer providing wear-leveling,
// bad-page retirement onto a spare pool, and crash-consistent scrub
// refresh. Construct with NewFTL (RAM-only map) or OpenFTL (journaled,
// remounts after power loss).
type FTL = ftl.FTL

// FTLOption configures an FTL at construction.
type FTLOption = ftl.Option

// FTLHealthReport extends the flash HealthReport with the FTL's spare-pool
// accounting.
type FTLHealthReport = ftl.HealthReport

// NewFTL builds a volatile (RAM-mapped) wear-leveling FTL over dev.
func NewFTL(dev *Device, opts ...FTLOption) *FTL { return ftl.New(dev, opts...) }

// OpenFTL mounts the journaled FTL on dev, recovering the translation map,
// any in-flight swap or refresh, and the retirement remap from flash.
func OpenFTL(dev *Device, opts ...FTLOption) (*FTL, error) { return ftl.Open(dev, opts...) }

// WithSparePages reserves n physical pages as a retirement pool: worn or
// health-refused pages are remapped onto spares with their data intact.
func WithSparePages(n int) FTLOption { return ftl.WithSpares(n) }

// WithSwapDelta sets the wear gap (in erase cycles) that triggers a
// hot/cold leveling swap.
func WithSwapDelta(d uint32) FTLOption { return ftl.WithSwapDelta(d) }

// --- Log-structured key-value store ---

// KVStore is the crash-safe log-structured key-value store over a device
// (or any KVBackend): append-only record log, single-bit read repair,
// proactive garbage collection, and journaled index checkpoints for O(tail)
// mounts. See internal/kvs for the record and checkpoint formats.
type KVStore = kvs.Store

// KVOption configures a KVStore at mount.
type KVOption = kvs.Option

// KVStats counts store operations, recovery events, GC passes, and
// checkpoint activity.
type KVStats = kvs.Stats

// KVBackend is the flat address space a KVStore runs on; OpenKVS adapts a
// Device, OpenKVSOn accepts anything page-erasable (an FTL, a fake).
type KVBackend = kvs.Backend

// CompactionConfig tunes the store's garbage collector: free-page trigger,
// store-wide garbage-ratio trigger, the per-victim garbage floor, and the
// wear bias. The zero value selects sensible defaults.
type CompactionConfig = kvs.CompactionConfig

// CheckpointConfig arms index checkpointing: pages per ping-pong slot,
// the append interval between automatic checkpoints, and a scan-only escape
// hatch for differential testing.
type CheckpointConfig = kvs.CheckpointConfig

// Store errors.
var (
	// ErrKVNotFound is returned by Get/Delete for an absent key.
	ErrKVNotFound = kvs.ErrNotFound
	// ErrKVFull is returned when an append cannot fit even after GC.
	ErrKVFull = kvs.ErrFull
	// ErrKVCorrupt is returned when a record is corrupt beyond the
	// single-bit repair the store attempts on read.
	ErrKVCorrupt = kvs.ErrCorrupt
	// ErrKVDeviceReadOnly is returned once the device is too worn to
	// relocate data: the store refuses writes instead of risking loss.
	ErrKVDeviceReadOnly = kvs.ErrDeviceReadOnly
	// ErrKVNoCheckpoint is returned by Checkpoint when checkpointing was
	// not configured at mount.
	ErrKVNoCheckpoint = kvs.ErrNoCheckpoint
)

// OpenKVS mounts the store on a device, replaying the record log (or the
// newest valid checkpoint plus the log tail, when WithKVCheckpoint is armed).
func OpenKVS(dev *Device, opts ...KVOption) (*KVStore, error) {
	return kvs.Open(dev, opts...)
}

// OpenKVSOn mounts the store on an arbitrary backend.
func OpenKVSOn(b KVBackend, opts ...KVOption) (*KVStore, error) {
	return kvs.OpenOn(b, opts...)
}

// WithKVCompaction arms proactive garbage collection: when free pages run
// low or dead records pile up, the store compacts its best victim page
// (most garbage, least wear) inline with the triggering write.
func WithKVCompaction(cfg CompactionConfig) KVOption { return kvs.WithCompaction(cfg) }

// WithKVCheckpoint arms index checkpointing into two ping-pong slots at the
// end of the page array: mounts restore the newest valid checkpoint and
// replay only the log tail written since, falling back to a full scan if no
// slot survives.
func WithKVCheckpoint(cfg CheckpointConfig) KVOption { return kvs.WithCheckpoint(cfg) }

// WithKVVerify makes every commit read back and verify what it wrote.
func WithKVVerify() KVOption { return kvs.WithVerify() }

// In-storage compute: the multi-page bitwise sense primitive and the
// predicate-pushdown scan surface built on it. A sense activates up to
// Spec.MaxSensePages wordlines of one bank simultaneously and resolves
// their bitwise AND or OR on the bitlines, charged once per sense instead
// of once per page — the primitive bitmap-index scans ride on. See
// internal/isc for the bitmap layout and the planner.

// SenseOp selects the bitline combination of a multi-page sense.
type SenseOp = flash.SenseOp

const (
	// SenseAND resolves the bitwise AND of the sensed pages.
	SenseAND = flash.SenseAND
	// SenseOR resolves the bitwise OR of the sensed pages.
	SenseOR = flash.SenseOR
)

// Pred is a predicate tree over indexed record fields, evaluated inside
// the flash array by KVStore.Scan.
type Pred = isc.Pred

// PredEq matches records whose field falls in the given bucket.
func PredEq(field string, bucket int) Pred { return isc.Eq(field, bucket) }

// PredIn matches records whose field falls in any of the given buckets.
func PredIn(field string, buckets ...int) Pred { return isc.In(field, buckets...) }

// PredAnd matches records satisfying every child predicate.
func PredAnd(ps ...Pred) Pred { return isc.And(ps...) }

// PredOr matches records satisfying any child predicate.
func PredOr(ps ...Pred) Pred { return isc.Or(ps...) }

// PredNot matches records failing the child predicate.
func PredNot(p Pred) Pred { return isc.Not(p) }

// KVIndexField declares one indexed record attribute: its bucket count and
// how a record's bucket is derived from its key and value.
type KVIndexField = kvs.IndexField

// KVIndexSpec configures the in-flash scan index.
type KVIndexSpec = kvs.IndexSpec

// KVPair is one KVStore.Scan result.
type KVPair = kvs.KV

// WithKVScanIndex arms predicate-pushdown scans: per-(field,bucket)
// bitmaps are kept in a carved flash region and Scan evaluates predicates
// inside the array with multi-page senses, reading only matching records.
// Backends that cannot sense (the FTL's remapping would scramble the
// layout) silently fall back to exact host scans.
func WithKVScanIndex(spec KVIndexSpec) KVOption { return kvs.WithScanIndex(spec) }
