// Package-level benchmarks: one per table and figure of the paper, plus
// the ablation studies called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its experiment through internal/bench and
// reports the headline scalar as a custom metric, so `-bench` output doubles
// as a results summary. Quick mode is used so the full suite finishes in
// minutes; run cmd/flipbit without -quick for full-scale tables.
package flipbit_test

import (
	"strconv"
	"strings"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/bench"
)

var benchCfg = bench.Config{Quick: true}

// runExperiment executes one registered experiment b.N times (the tables
// are deterministic, so N is usually 1) and returns the last table.
func runExperiment(b *testing.B, id string) *bench.Table {
	b.Helper()
	e := bench.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var tab *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = e.Run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// lastPct extracts the percentage in the given column of the table's final
// row (the MEAN/GEOMEAN summary line) as a fraction.
func lastPct(b *testing.B, tab *bench.Table, col int) float64 {
	b.Helper()
	row := tab.Rows[len(tab.Rows)-1]
	v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
	if err != nil {
		b.Fatalf("no percentage in %q", row[col])
	}
	return v / 100
}

func BenchmarkFig1(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkTableI(b *testing.B) { runExperiment(b, "table1") }

func BenchmarkTableII(b *testing.B) { runExperiment(b, "table2") }

func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

func BenchmarkTableIII(b *testing.B) { runExperiment(b, "table3") }

func BenchmarkFig10(b *testing.B) {
	tab := runExperiment(b, "fig10")
	b.ReportMetric(100*lastPct(b, tab, 2), "mean-energy-reduction-%")
}

func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

func BenchmarkFig12(b *testing.B) {
	tab := runExperiment(b, "fig12")
	b.ReportMetric(100*lastPct(b, tab, 4), "mean-energy-reduction-%")
}

func BenchmarkFig13(b *testing.B) {
	tab := runExperiment(b, "fig13")
	row := tab.Rows[len(tab.Rows)-1]
	if f1, err := strconv.ParseFloat(row[4], 64); err == nil {
		b.ReportMetric(f1, "geomean-F1")
	}
}

func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }

func BenchmarkFig17(b *testing.B) {
	tab := runExperiment(b, "fig17")
	b.ReportMetric(100*lastPct(b, tab, 4), "geomean-lifetime-increase-%")
}

func BenchmarkFig18(b *testing.B) {
	tab := runExperiment(b, "fig18")
	b.ReportMetric(100*lastPct(b, tab, 4), "geomean-lifetime-increase-%")
}

func BenchmarkTableIV(b *testing.B) { runExperiment(b, "table4") }

func BenchmarkAblationOptimality(b *testing.B) { runExperiment(b, "ablation-optimality") }
func BenchmarkAblationErrorMetric(b *testing.B) {
	runExperiment(b, "ablation-metric")
}
func BenchmarkAblationFallback(b *testing.B)    { runExperiment(b, "ablation-fallback") }
func BenchmarkAblationSkipProgram(b *testing.B) { runExperiment(b, "ablation-skip") }
func BenchmarkAblationMLC(b *testing.B)         { runExperiment(b, "ablation-mlc") }
func BenchmarkAblationFloat(b *testing.B)       { runExperiment(b, "ablation-float") }
func BenchmarkAblationPageSize(b *testing.B)    { runExperiment(b, "ablation-pagesize") }

func BenchmarkExpRelatedWork(b *testing.B) { runExperiment(b, "exp-related") }
func BenchmarkExpWearLeveling(b *testing.B) {
	runExperiment(b, "exp-wear")
}
func BenchmarkExpEnergyHarvest(b *testing.B) { runExperiment(b, "exp-harvest") }

// BenchmarkKVScale drives the store-scale experiment (quick key counts) and
// reports the checkpointed-mount speedup as its headline metric.
func BenchmarkKVScale(b *testing.B) {
	tab := runExperiment(b, "kvscale")
	last := tab.Rows[len(tab.Rows)-1]
	sp, err := strconv.ParseFloat(strings.TrimSuffix(last[len(last)-2], "×"), 64)
	if err != nil {
		b.Fatalf("no speedup in %q", last[len(last)-2])
	}
	b.ReportMetric(sp, "mount-speedup-x")
}
