// Command em0 is the toolchain for the repository's EM0 microcontroller
// simulator: it assembles, disassembles and runs EM0 programs against the
// simulated FlipBit flash system, reporting cycles, energy and flash
// statistics.
//
// Usage:
//
//	em0 asm prog.s -o prog.bin [-base 0x20000000]
//	em0 dis prog.bin [-base 0x20000000]
//	em0 run prog.s [-xip] [-steps N] [-sram N]
//
// `run` assembles and executes in one step. With -xip the program is
// placed in (and fetched from) NOR flash, paying real read latency and
// energy per instruction fetch; otherwise it runs from SRAM.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/mcu"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "asm":
		err = cmdAsm(os.Args[2:])
	case "dis":
		err = cmdDis(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "em0: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  em0 asm <prog.s> -o <prog.bin> [-base addr]
  em0 dis <prog.bin> [-base addr]
  em0 run <prog.s> [-xip] [-steps N] [-sram bytes]`)
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	out := fs.String("o", "", "output image path (required)")
	base := fs.Uint64("base", uint64(mcu.SRAMBase), "load address the image is linked for")
	if err := fs.Parse(sourceFirst(args, fs)); err != nil {
		return err
	}
	src, err := readSource(fs)
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("asm: -o is required")
	}
	img, err := mcu.Assemble(src, uint32(*base))
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, img, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes at %#x\n", *out, len(img), *base)
	return nil
}

func cmdDis(args []string) error {
	fs := flag.NewFlagSet("dis", flag.ExitOnError)
	base := fs.Uint64("base", uint64(mcu.SRAMBase), "address the image is loaded at")
	if err := fs.Parse(sourceFirst(args, fs)); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("dis: image path required")
	}
	img, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(mcu.DisassembleImage(img, uint32(*base)))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	xip := fs.Bool("xip", false, "execute in place from NOR flash")
	steps := fs.Int("steps", 10_000_000, "instruction budget")
	sram := fs.Int("sram", 64*1024, "SRAM size in bytes")
	if err := fs.Parse(sourceFirst(args, fs)); err != nil {
		return err
	}
	src, err := readSource(fs)
	if err != nil {
		return err
	}
	dev, err := core.NewDevice(flash.DefaultSpec())
	if err != nil {
		return err
	}
	bus := mcu.NewBus(*sram, dev)
	entry := mcu.SRAMBase
	if *xip {
		entry = mcu.FlashBase
	}
	img, err := mcu.Assemble(src, entry)
	if err != nil {
		return err
	}
	if err := bus.LoadProgram(entry, img); err != nil {
		return err
	}
	dev.ResetStats() // exclude firmware programming

	cpu := mcu.NewCPU(bus, entry)
	runErr := cpu.Run(*steps)
	if bus.Console.Len() > 0 {
		fmt.Printf("console: %q\n", bus.Console.String())
	}
	st := dev.Flash().Stats()
	ctrl := dev.Stats()
	fmt.Printf("cpu:   %d cycles, %v, pc=%#x halted=%v\n", cpu.Cycles, cpu.Energy(), cpu.PC, cpu.Halted)
	fmt.Printf("flash: reads=%d programs=%d (skipped %d) erases=%d energy=%v busy=%v\n",
		st.Reads, st.Programs, st.ProgramsSkipped, st.Erases, st.Energy, st.Busy)
	if ctrl.PagesApprox+ctrl.PagesExact > 0 {
		fmt.Printf("flipbit: approx pages=%d exact fallbacks=%d mean |error|=%.2f\n",
			ctrl.PagesApprox, ctrl.PagesExact, ctrl.MAE())
	}
	return runErr
}

// sourceFirst lets the positional source argument precede flags
// (em0 run prog.s -xip), which flag alone does not support.
func sourceFirst(args []string, fs *flag.FlagSet) []string {
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		// Rotate: parse flags after the positional argument, then
		// re-append the positional so fs.Arg(0) still works.
		rest := args[1:]
		return append(append([]string{}, rest...), args[0])
	}
	return args
}

func readSource(fs *flag.FlagSet) (string, error) {
	if fs.NArg() < 1 {
		return "", fmt.Errorf("source file required")
	}
	b, err := os.ReadFile(fs.Arg(fs.NArg() - 1))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
