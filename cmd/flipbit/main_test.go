package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

// TestUsageGolden pins the -h output. The help text is user interface:
// every flag must appear, and the examples block must stay in sync with the
// flags that exist. Regenerate with:
//
//	go test ./cmd/flipbit -run TestUsageGolden -update
var update = flag.Bool("update", false, "rewrite testdata/usage.golden")

// Note: the program's flags live on their own FlagSet (`flags` in main.go),
// so the test binary's -test.* flags can never leak into the golden.

func TestUsageGolden(t *testing.T) {
	var buf bytes.Buffer
	printUsage(&buf)

	const golden = "testdata/usage.golden"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("usage drifted from golden (run with -update after reviewing):\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}

	// Structural check independent of the golden: every registered flag is
	// mentioned in the help text, so nobody adds a flag without help.
	flags.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(buf.String(), "-"+f.Name) {
			t.Errorf("flag -%s missing from usage output", f.Name)
		}
	})
}
