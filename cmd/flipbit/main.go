// Command flipbit regenerates the tables and figures of "FlipBit:
// Approximate Flash Memory for IoT Devices" (HPCA 2024) from the simulation
// library in this repository.
//
// Usage:
//
//	flipbit list                 # show every experiment
//	flipbit fig10                # regenerate one experiment
//	flipbit fig10 fig14 table4   # several
//	flipbit all                  # everything, in paper order
//	flipbit -quick all           # trimmed workloads (seconds, same shapes)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/flipbit-sim/flipbit/internal/bench"
	"github.com/flipbit-sim/flipbit/internal/faultcampaign"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// Flags live on their own FlagSet (not flag.CommandLine) so the usage
// golden test sees exactly the program's flags, not the test binary's.
var (
	flags      = flag.NewFlagSet("flipbit", flag.ExitOnError)
	quick      = flags.Bool("quick", false, "trim workloads for a fast run (shapes preserved)")
	cellMode   = flags.String("cell", "slc", "cell density for device-level experiments: slc, mlc or tlc (derates latency, energy and endurance)")
	csvDir     = flags.String("csv", "", "also write each table as <dir>/<id>.csv")
	benchJSON  = flags.String("benchjson", "", "write the writepath JSON report to this path, plus BENCH_crashcampaign.json, BENCH_transient.json, BENCH_lifetime.json, BENCH_encode.json, BENCH_kvscale.json and BENCH_inflash.json next to it")
	faults     = flags.Bool("faults", false, "run a fault-injection campaign against the key-value store and print its outcome")
	seed       = flags.Uint64("seed", 1, "campaign seed for -faults (same seed replays byte-identically)")
	cycles     = flags.Int("cycles", 1000, "crash/reboot cycles for -faults")
	onFTL      = flags.Bool("ftl", false, "run the -faults campaign through the journaled FTL with read-back verification")
	scrub      = flags.Bool("scrub", false, "arm the background scrubber (and a 2-page spare pool with -ftl) during the -faults campaign")
	retry      = flags.Int("retry", 0, "arm transient program/erase verify failures in the -faults mix, absorbed by a verify-retry budget of this many re-issues")
	lifetime   = flags.Bool("lifetime", false, "run the endurance lifetime experiment and print writes-to-first-data-loss per configuration")
	inflash    = flags.Bool("inflash", false, "run the in-flash query experiment and print pushdown-vs-host-scan results")
	listExps   = flags.Bool("experiments", false, "list every bench experiment id with a one-line description, then exit")
	cpuProfile = flags.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with 'go tool pprof')")
	memProfile = flags.String("memprofile", "", "write a heap profile taken at exit to this file")
)

// main delegates to run so deferred profile writers execute before the
// process exits — os.Exit inside run's body would skip them.
func main() {
	os.Exit(run())
}

func run() int {
	flags.Usage = usage
	_ = flags.Parse(os.Args[1:])
	args := flags.Args()
	cell, err := parseCellMode(*cellMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flipbit: %v\n", err)
		return 2
	}
	cfg := bench.Config{Quick: *quick, Cell: cell}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flipbit: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "flipbit: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flipbit: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "flipbit: memprofile: %v\n", err)
			}
		}()
	}

	if *listExps {
		for _, e := range bench.Registry() {
			fmt.Printf("  %-20s %s\n", e.ID, e.What)
		}
		return 0
	}
	if *lifetime {
		if err := runLifetime(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "flipbit: lifetime: %v\n", err)
			return 1
		}
		if len(args) == 0 && *benchJSON == "" && !*faults && !*inflash {
			return 0
		}
	}
	if *inflash {
		if err := runExp(cfg, "inflash"); err != nil {
			fmt.Fprintf(os.Stderr, "flipbit: inflash: %v\n", err)
			return 1
		}
		if len(args) == 0 && *benchJSON == "" && !*faults {
			return 0
		}
	}
	if *faults {
		if err := runFaults(*seed, *cycles, *onFTL, *scrub, *retry); err != nil {
			fmt.Fprintf(os.Stderr, "flipbit: faults: %v\n", err)
			return 1
		}
		if len(args) == 0 && *benchJSON == "" {
			return 0
		}
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "flipbit: benchjson: %v\n", err)
			return 1
		}
		if len(args) == 0 {
			return 0
		}
	}
	if len(args) == 0 {
		usage()
		return 2
	}

	if args[0] == "list" {
		for _, e := range bench.Registry() {
			fmt.Printf("  %-20s %s\n", e.ID, e.What)
		}
		return 0
	}

	var ids []string
	if args[0] == "all" {
		for _, e := range bench.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	for _, id := range ids {
		e := bench.ByID(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "flipbit: unknown experiment %q (try 'flipbit list')\n", id)
			return 2
		}
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flipbit: %s: %v\n", id, err)
			return 1
		}
		tab.Render(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, tab); err != nil {
				fmt.Fprintf(os.Stderr, "flipbit: csv: %v\n", err)
				return 1
			}
		}
	}
	return 0
}

// parseCellMode maps the -cell flag onto a flash.CellMode.
func parseCellMode(s string) (flash.CellMode, error) {
	switch s {
	case "slc":
		return flash.SLC, nil
	case "mlc":
		return flash.MLC, nil
	case "tlc":
		return flash.TLC, nil
	}
	return flash.SLC, fmt.Errorf("unknown -cell mode %q (want slc, mlc or tlc)", s)
}

func writeBenchJSON(path string, cfg bench.Config) error {
	wp, err := bench.RunWritePath(cfg)
	if err != nil {
		return err
	}
	if err := writeJSONFile(path, wp.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	cc, err := bench.RunCrashCampaign(cfg)
	if err != nil {
		return err
	}
	ccPath := filepath.Join(filepath.Dir(path), "BENCH_crashcampaign.json")
	if err := writeJSONFile(ccPath, cc.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", ccPath)

	tr, err := bench.RunTransient(cfg)
	if err != nil {
		return err
	}
	trPath := filepath.Join(filepath.Dir(path), "BENCH_transient.json")
	if err := writeJSONFile(trPath, tr.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", trPath)

	lt, err := bench.RunLifetime(cfg)
	if err != nil {
		return err
	}
	ltPath := filepath.Join(filepath.Dir(path), "BENCH_lifetime.json")
	if err := writeJSONFile(ltPath, lt.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", ltPath)

	ek, err := bench.RunEncodeKernel(cfg)
	if err != nil {
		return err
	}
	ekPath := filepath.Join(filepath.Dir(path), "BENCH_encode.json")
	if err := writeJSONFile(ekPath, ek.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", ekPath)

	ks, err := bench.RunKVScale(cfg)
	if err != nil {
		return err
	}
	ksPath := filepath.Join(filepath.Dir(path), "BENCH_kvscale.json")
	if err := writeJSONFile(ksPath, ks.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", ksPath)

	inf, err := bench.RunInflash(cfg)
	if err != nil {
		return err
	}
	infPath := filepath.Join(filepath.Dir(path), "BENCH_inflash.json")
	if err := writeJSONFile(infPath, inf.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", infPath)
	return nil
}

// runLifetime runs the endurance lifetime experiment and renders its table.
func runLifetime(cfg bench.Config) error {
	start := time.Now()
	tab, err := bench.ExpLifetime(cfg)
	if err != nil {
		return err
	}
	tab.Render(os.Stdout)
	fmt.Printf("  (lifetime in %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runExp runs one registered experiment and renders its table.
func runExp(cfg bench.Config, id string) error {
	start := time.Now()
	tab, err := bench.ByID(id).Run(cfg)
	if err != nil {
		return err
	}
	tab.Render(os.Stdout)
	fmt.Printf("  (%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}

func writeJSONFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render(f)
}

// runFaults runs one seeded campaign and prints a human-readable summary.
// A non-zero violation count is a hard failure: it means a committed key
// was lost or settled to a torn value after a crash.
func runFaults(seed uint64, cycles int, onFTL, scrub bool, retry int) error {
	cfg := faultcampaign.Config{Seed: seed, Cycles: cycles, UseFTL: onFTL, Verify: onFTL, Scrub: scrub}
	if scrub && onFTL {
		cfg.Spares = 2
	}
	if retry > 0 {
		// Transient verify failures join the mix, with incidents bounded by
		// the budget (MaxRetries <= retry) so every one recovers in place.
		cfg.Retry = retry
		cfg.Mix = flash.FaultMix{
			PowerLoss: 4, TransientProgram: 3, TransientErase: 1,
			MinGap: 0, MaxGap: 250, MaxRetries: retry,
		}
	}
	start := time.Now()
	res, err := faultcampaign.Run(cfg)
	if err != nil {
		return err
	}
	stack := "kvs on raw flash"
	if onFTL {
		stack = "kvs on journaled ftl (verify on)"
	}
	if scrub {
		stack += " + scrubber"
	}
	fmt.Printf("fault campaign: seed %#x, %d cycles against %s (%v host time)\n",
		seed, res.Cycles, stack, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  crashes survived     %d (%d during recovery itself)\n", res.Crashes, res.CrashesDuringRecovery)
	fmt.Printf("  faults fired         %d (armed: %d power-loss, %d stuck-bits, %d read-disturb)\n",
		res.FaultsFired, res.PowerLossArmed, res.StuckBitsArmed, res.ReadDisturbArmed)
	fmt.Printf("  mean recovery        %v flash busy, %s total recovery energy\n",
		res.MeanRecoveryBusy.Round(time.Microsecond), res.RecoveryEnergy)
	fmt.Printf("  wasted pages         %d (retired + quarantined), %d bits corrected, %d torn records skipped\n",
		res.WastedPages, res.CorrectedBits, res.TornSkipped)
	if scrub {
		fmt.Printf("  scrubber             %d sampled, %d absorbed, %d refreshed, %d retired\n",
			res.ScrubSampled, res.ScrubAbsorbed, res.ScrubRefreshed, res.ScrubRetired)
	}
	if retry > 0 {
		fmt.Printf("  verify-retry         %d re-issues saved %d writes, %d pages retired on exhaustion (armed: %d program, %d erase)\n",
			res.RetryAttempts, res.RetrySaves, res.RetryRetired,
			res.TransientProgramArmed, res.TransientEraseArmed)
	}
	fmt.Printf("  fingerprint          %016x (replays byte-identically from the seed)\n", res.Fingerprint)
	if res.ViolationCount != 0 {
		fmt.Printf("  VIOLATIONS           %d\n", res.ViolationCount)
		for _, v := range res.Violations {
			fmt.Printf("    %s\n", v)
		}
		return fmt.Errorf("%d recovery-invariant violations", res.ViolationCount)
	}
	fmt.Printf("  violations           0 — every committed key survived every crash\n")
	return nil
}

func writeCSV(dir, id string, tab *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.RenderCSV(f)
}

func usage() {
	printUsage(os.Stderr)
}

// printUsage writes the full help text — header plus flag defaults — to w.
// Kept separate from usage() so the golden test can pin the output.
func printUsage(w io.Writer) {
	fmt.Fprint(w, usageHeader)
	flags.SetOutput(w)
	flags.PrintDefaults()
	flags.SetOutput(os.Stderr)
}

const usageHeader = `usage: flipbit [-quick] <experiment-id>... | all | list

Regenerates the paper's tables and figures. Examples:
  flipbit list
  flipbit table2 fig10
  flipbit -quick all
  flipbit -faults -seed 7 -cycles 2000        # crash/reboot campaign, raw flash
  flipbit -faults -ftl                        # same through the journaled FTL
  flipbit -faults -ftl -scrub                 # same with the scrubber armed
  flipbit -faults -retry 3                    # with transient verify failures + retry
  flipbit -lifetime                           # writes-to-first-data-loss comparison
  flipbit -cell mlc writepath                 # device experiments on a derated MLC part
  flipbit -inflash                            # in-flash pushdown vs host scans
  flipbit -experiments                        # list every experiment id
  flipbit -benchjson BENCH_writepath.json     # machine-readable bench artifacts
  flipbit -cpuprofile cpu.pprof -quick all    # profile the run for go tool pprof
`
