// Command flipbit regenerates the tables and figures of "FlipBit:
// Approximate Flash Memory for IoT Devices" (HPCA 2024) from the simulation
// library in this repository.
//
// Usage:
//
//	flipbit list                 # show every experiment
//	flipbit fig10                # regenerate one experiment
//	flipbit fig10 fig14 table4   # several
//	flipbit all                  # everything, in paper order
//	flipbit -quick all           # trimmed workloads (seconds, same shapes)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/flipbit-sim/flipbit/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "trim workloads for a fast run (shapes preserved)")
	csvDir := flag.String("csv", "", "also write each table as <dir>/<id>.csv")
	benchJSON := flag.String("benchjson", "", "run the writepath benchmark and write its JSON report to this path")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	cfg := bench.Config{Quick: *quick}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "flipbit: benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		if len(args) == 0 {
			return
		}
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if args[0] == "list" {
		for _, e := range bench.Registry() {
			fmt.Printf("  %-20s %s\n", e.ID, e.What)
		}
		return
	}

	var ids []string
	if args[0] == "all" {
		for _, e := range bench.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	for _, id := range ids {
		e := bench.ByID(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "flipbit: unknown experiment %q (try 'flipbit list')\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flipbit: %s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
		fmt.Printf("  (%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, tab); err != nil {
				fmt.Fprintf(os.Stderr, "flipbit: csv: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeBenchJSON(path string, cfg bench.Config) error {
	rep, err := bench.RunWritePath(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rep.WriteJSON(f)
}

func writeCSV(dir, id string, tab *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.RenderCSV(f)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: flipbit [-quick] <experiment-id>... | all | list

Regenerates the paper's tables and figures. Examples:
  flipbit list
  flipbit table2 fig10
  flipbit -quick all
`)
	flag.PrintDefaults()
}
